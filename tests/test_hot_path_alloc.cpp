// The decision hot path is allocation-free in steady state, and the
// allocation-free overloads decide bitwise-identically to the by-value
// paths they replaced.
//
// "Steady state" means: scratch/feature buffers have grown to their final
// sizes (first decide), the DQN replay ring is preallocated, and the
// tabular-Q table already contains the visited states.  Amortized work is
// excluded by construction here — IL retraining (buffer fills), DQN
// minibatch training (min_replay gate), and first-visit Q-row insertion
// are all deliberate, bounded allocations outside the per-decide path.
//
// alloc_guard.h defines the counting global operator new for this binary,
// so it must be included here and nowhere else in this target.
#include <gtest/gtest.h>

#include <deque>

#include "alloc_guard.h"

#include "core/governors.h"
#include "core/il_policy.h"
#include "core/nmpc.h"
#include "core/rl_controller.h"
#include "ml/qlearn.h"
#include "ml/rls.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::core {
namespace {

using alloc_guard::AllocationProbe;

/// Synthetic but well-spread policy dataset: enough structure to train a
/// small network deterministically, no Oracle search required.
PolicyDataset synthetic_dataset(const soc::ConfigSpace& space, std::size_t n, common::Rng& rng) {
  PolicyDataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    common::Vec s(12);
    for (double& v : s) v = rng.uniform(-2.0, 2.0);
    ds.states.push_back(std::move(s));
    ds.labels.push_back(space.config_at(
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(space.size()) - 1))));
  }
  return ds;
}

/// Recorded (result, executed) transitions for replaying a controller over
/// an identical stimulus stream.
struct Recorded {
  soc::SnippetResult result;
  soc::SocConfig executed;
};

std::vector<Recorded> record_run(soc::BigLittlePlatform& plat, DrmController& ctl,
                                 const std::vector<soc::SnippetDescriptor>& trace,
                                 soc::SocConfig c) {
  std::vector<Recorded> rec;
  rec.reserve(trace.size());
  for (const auto& s : trace) {
    const soc::SnippetResult r = plat.execute(s, c);
    rec.push_back({r, c});
    c = ctl.step(r, c);
  }
  return rec;
}

TEST(HotPathAlloc, GovernorsNeverAllocatePerStep) {
  soc::BigLittlePlatform plat;
  OndemandGovernor ondemand(plat.space());
  InteractiveGovernor interactive(plat.space());
  PerformanceGovernor performance(plat.space());
  PowersaveGovernor powersave;
  common::Rng rng(1);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 8, rng);
  soc::SocConfig c{2, 2, 6, 9};
  std::vector<soc::SnippetResult> results;
  results.reserve(trace.size());
  for (const auto& s : trace) results.push_back(plat.execute(s, c));

  soc::SocConfig sink{};
  AllocationProbe probe;
  for (const auto& r : results) {
    sink = ondemand.step(r, c);
    sink = interactive.step(r, sink);
    sink = performance.step(r, sink);
    sink = powersave.step(r, sink);
  }
  EXPECT_EQ(probe.delta(), 0u);
  EXPECT_TRUE(plat.space().valid(sink));
}

TEST(HotPathAlloc, IlPolicyScratchDecideIsAllocFreeAndBitwiseEqual) {
  soc::ConfigSpace space;
  IlPolicy policy(space);
  common::Rng rng(11);
  const PolicyDataset ds = synthetic_dataset(space, 300, rng);
  policy.train_offline(ds, rng);

  // By-value and scratch decisions over the same states must agree exactly:
  // the scratch path reorders no FP operation and the logit argmax equals
  // the softmax argmax (monotone map, same first-max tie-break).
  IlPolicy::Scratch scratch;
  std::vector<soc::SocConfig> by_value(ds.states.size()), by_scratch(ds.states.size());
  for (std::size_t i = 0; i < ds.states.size(); ++i) {
    by_value[i] = policy.decide(ds.states[i]);
    by_scratch[i] = policy.decide(ds.states[i], scratch);
  }
  for (std::size_t i = 0; i < ds.states.size(); ++i) EXPECT_EQ(by_scratch[i], by_value[i]);

  // The scratch buffers are warm now: every further decide is heap-silent.
  AllocationProbe probe;
  for (const auto& s : ds.states) (void)policy.decide(s, scratch);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, MultiHeadPredictIntoMatchesPredictBitwise) {
  // Untrained (random-init) network: the logit-vs-softmax argmax equivalence
  // must hold for arbitrary weights, not just converged ones.
  ml::MultiHeadClassifier net(12, {4, 5, 13, 19});
  common::Rng rng(23);
  ml::MultiHeadClassifier::InferScratch scratch;
  std::vector<std::size_t> cls;
  for (int i = 0; i < 200; ++i) {
    common::Vec x(12);
    for (double& v : x) v = rng.uniform(-3.0, 3.0);
    const std::vector<std::size_t> expect = net.predict(x);
    net.predict_into(x, cls, scratch);
    EXPECT_EQ(cls, expect);
  }
  // Warm scratch: zero allocations per fast-path prediction.
  common::Vec x(12, 0.25);
  net.predict_into(x, cls, scratch);
  AllocationProbe probe;
  for (int i = 0; i < 100; ++i) net.predict_into(x, cls, scratch);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, TabularQSteadyStateStepIsAllocFree) {
  soc::BigLittlePlatform plat;
  QLearningController ctl(plat.space());
  ctl.begin_run({2, 2, 6, 9});
  common::Rng rng(2);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Qsort"), 60, rng);
  // Warm-up pass: visits (and therefore inserts) every discretized state the
  // replay below will see.
  const std::vector<Recorded> rec = record_run(plat, ctl, trace, {2, 2, 6, 9});
  ASSERT_GT(ctl.table_states(), 1u);

  // One unmeasured replay first: Q-rows are inserted by update(), whose
  // `state` argument trails one step behind, so the final recorded state's
  // row appears here — the first visit, a deliberate amortized allocation.
  for (const Recorded& r : rec) (void)ctl.step(r.result, r.executed);

  // Steady state: every replayed state is in the table, so no row is
  // inserted and the whole step (discretize, update, select, apply) stays off
  // the heap.
  AllocationProbe probe;
  for (const Recorded& r : rec) (void)ctl.step(r.result, r.executed);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, DqnControllerDecideIsAllocFreeOutsideTraining) {
  soc::BigLittlePlatform plat;
  ml::DqnConfig cfg;
  cfg.replay_capacity = 64;
  // Push the amortized work past this test's horizon: the gate below never
  // opens, isolating the per-decide path (features, forward pass, ring
  // insert) the assertion is about.
  cfg.min_replay = 1u << 20;
  cfg.target_sync_period = 1u << 20;
  DqnController ctl(plat.space(), cfg);
  ctl.begin_run({2, 2, 6, 9});
  common::Rng rng(3);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("AES"), 40, rng);
  const std::vector<Recorded> rec = record_run(plat, ctl, trace, {2, 2, 6, 9});
  // One unmeasured replay warms every lazily-sized buffer (feature vector,
  // greedy-path inference scratch) along both epsilon-greedy branches.
  for (const Recorded& r : rec) (void)ctl.step(r.result, r.executed);

  // Feature buffer, inference scratch, and replay ring are warm/preallocated:
  // replaying the stimulus allocates nothing.
  AllocationProbe probe;
  for (const Recorded& r : rec) (void)ctl.step(r.result, r.executed);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, DqnReplayRingMatchesDequeEvictionOrder) {
  ml::DqnConfig cfg;
  cfg.replay_capacity = 8;
  cfg.min_replay = 1u << 20;  // keep training out of the ordering question
  ml::Dqn dqn(3, 2, cfg);
  std::deque<double> shadow;  // the retired implementation: push_back + pop_front
  for (int i = 0; i < 21; ++i) {
    const common::Vec state(3, static_cast<double>(i));
    const common::Vec next(3, static_cast<double>(i) + 0.5);
    dqn.observe(state, static_cast<std::size_t>(i % 2), 0.1 * i, next);
    shadow.push_back(static_cast<double>(i));
    if (shadow.size() > cfg.replay_capacity) shadow.pop_front();
  }
  ASSERT_EQ(dqn.replay_size(), cfg.replay_capacity);
  for (std::size_t i = 0; i < cfg.replay_capacity; ++i) {
    // replay_at(i) is the i-th oldest, exactly as the deque indexed it.
    EXPECT_EQ(dqn.replay_at(i).state[0], shadow[i]);
    EXPECT_EQ(dqn.replay_at(i).action, static_cast<std::size_t>(shadow[i]) % 2);
    EXPECT_EQ(dqn.replay_at(i).next_state[0], shadow[i] + 0.5);
  }
}

TEST(HotPathAlloc, RlsScratchUpdateIsAllocFreeAndBitwiseEqual) {
  // The scratch overload fuses the P update ((p - k*px) * inv_lambda
  // elementwise) but performs the identical FP operations in the identical
  // order as the by-value outer/-=/*= chain, so two models fed the same
  // stream through the two overloads must stay bitwise-identical.
  ml::RecursiveLeastSquares by_value(6), by_scratch(6);
  ml::RecursiveLeastSquares::Scratch scratch;
  common::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    common::Vec x(6);
    for (double& v : x) v = rng.uniform(-2.0, 2.0);
    const double y = rng.uniform(-1.0, 1.0);
    const double e0 = by_value.update(x, y);
    const double e1 = by_scratch.update(x, y, scratch);
    EXPECT_EQ(e1, e0);
  }
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(by_scratch.weights()[i], by_value.weights()[i]);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(by_scratch.covariance()(i, j), by_value.covariance()(i, j));

  // Warm scratch: every further update is heap-silent.
  common::Vec x(6, 0.3);
  AllocationProbe probe;
  for (int i = 0; i < 100; ++i) (void)by_scratch.update(x, 0.25, scratch);
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(HotPathAlloc, GpuModelsScratchUpdateIsBitwiseEqual) {
  gpu::GpuPlatform plat;
  GpuOnlineModels by_value(plat), by_scratch(plat);
  GpuOnlineModels::UpdateScratch scratch;
  common::Rng rng(5);
  const auto frames = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 40, rng);
  const double period = 1.0 / 30.0;
  GpuWorkloadState w;
  const gpu::GpuConfig c{9, 2};
  for (const auto& f : frames) {
    const auto r = plat.render_ideal(f, c, period);
    by_value.update(w, c, period, r);
    by_scratch.update(w, c, period, r, scratch);
    w.observe(r, by_value.slice_eff(c.num_slices));
  }
  // Both internal RLS models agree bitwise -> every prediction agrees.
  for (const gpu::GpuConfig probe_cfg :
       {gpu::GpuConfig{3, 1}, gpu::GpuConfig{9, 2}, gpu::GpuConfig{15, 4}}) {
    EXPECT_EQ(by_scratch.predict_frame_time_s(w, probe_cfg),
              by_value.predict_frame_time_s(w, probe_cfg));
    EXPECT_EQ(by_scratch.predict_gpu_energy_j(w, probe_cfg, period),
              by_value.predict_gpu_energy_j(w, probe_cfg, period));
  }
}

TEST(HotPathAlloc, NmpcFullStepIsAllocFreeIncludingRefit) {
  // The PR-8 zero-alloc contract covered decide(); with the scratch update
  // the *whole* per-frame NMPC step — model refit, workload EWMA, slow solve
  // or fast trim — stays off the heap, across both rate branches.
  gpu::GpuPlatform plat;
  GpuOnlineModels models(plat);
  common::Rng rng(7);
  bootstrap_gpu_models(plat, models, 1.0 / 30.0, 200, rng);
  NmpcGpuController nmpc(plat, models);
  nmpc.begin_run({9, 4});
  common::Rng trng(3);
  const auto frame = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 1, trng)[0];
  const auto result = plat.render(frame, {9, 4}, 1.0 / 30.0);

  // Warm-up covers a full slow period, so both the slow-tick branch (exact
  // enumeration through phi_buf_) and the fast trim size their buffers.
  gpu::GpuConfig c{9, 4};
  for (std::size_t i = 0; i < 31; ++i) c = nmpc.step(result, c, i);

  AllocationProbe probe;
  for (std::size_t i = 31; i < 151; ++i) c = nmpc.step(result, c, i);
  EXPECT_EQ(probe.delta(), 0u);
  EXPECT_TRUE(plat.valid(c));
}

TEST(HotPathAlloc, HashStateOverloadsAgree) {
  const std::vector<int> comps{3, 0, 2, 1, 4, 2, 1, 3};
  EXPECT_EQ(ml::hash_state(comps.data(), comps.size()), ml::hash_state(comps));
  const std::vector<int> empty;
  EXPECT_EQ(ml::hash_state(empty.data(), 0), ml::hash_state(empty));
}

}  // namespace
}  // namespace oal::core
