// Tests for the NoC substrate: mesh/routing, analytical model, simulator and
// SVR-corrected model.
#include <gtest/gtest.h>

#include "noc/svr_model.h"

namespace oal::noc {
namespace {

TEST(Mesh, TopologyCounts) {
  Mesh m(4, 3);
  EXPECT_EQ(m.num_nodes(), 12u);
  // Bidirectional links: 2 * (3*(cols-1)*rows... ) -> 2*(3*3 + 4*2) = 34
  EXPECT_EQ(m.num_links(), 2u * ((4 - 1) * 3 + 4 * (3 - 1)));
  EXPECT_THROW(Mesh(1, 1), std::invalid_argument);
}

TEST(Mesh, XyRouteGoesXThenY) {
  Mesh m(4, 4);
  const auto route = m.xy_route(m.node(0, 0), m.node(2, 3));
  EXPECT_EQ(route.size(), 5u);  // 2 X hops + 3 Y hops
  // First hops move in X.
  const Link& first = m.links()[route[0]];
  EXPECT_EQ(m.y_of(first.from), m.y_of(first.to));
}

TEST(Mesh, RouteEmptyForSelf) {
  Mesh m(3, 3);
  EXPECT_TRUE(m.xy_route(4, 4).empty());
}

TEST(Mesh, HopCountIsManhattan) {
  Mesh m(5, 5);
  EXPECT_EQ(m.hop_count(m.node(0, 0), m.node(4, 4)), 8u);
  EXPECT_EQ(m.hop_count(m.node(2, 2), m.node(2, 2)), 0u);
  EXPECT_EQ(m.xy_route(m.node(0, 0), m.node(4, 4)).size(),
            m.hop_count(m.node(0, 0), m.node(4, 4)));
}

TEST(Mesh, LinkIndexRejectsNonAdjacent) {
  Mesh m(3, 3);
  EXPECT_THROW(m.link_index(0, 2), std::invalid_argument);
  EXPECT_NO_THROW(m.link_index(0, 1));
}

TEST(Traffic, UniformRates) {
  const auto t = TrafficMatrix::uniform(9, 0.09);
  double row = 0.0;
  for (std::size_t d = 0; d < 9; ++d) row += t.rate(0, d);
  EXPECT_NEAR(row, 0.09, 1e-12);
  EXPECT_DOUBLE_EQ(t.rate(3, 3), 0.0);
  EXPECT_NEAR(t.total_rate(), 9 * 0.09, 1e-9);
}

TEST(Traffic, HotspotConcentrates) {
  const auto t = TrafficMatrix::hotspot(9, 4, 0.1, 0.5);
  EXPECT_GT(t.rate(0, 4), t.rate(0, 1));
}

TEST(Traffic, BitComplementIsPermutation) {
  const auto t = TrafficMatrix::bit_complement(4, 4, 0.1);
  for (std::size_t s = 0; s < 16; ++s) {
    int dsts = 0;
    for (std::size_t d = 0; d < 16; ++d) dsts += t.rate(s, d) > 0.0;
    EXPECT_EQ(dsts, 1);
  }
}

TEST(Analytical, LatencyGrowsWithLoad) {
  Mesh m(4, 4);
  AnalyticalNocModel model(m);
  const auto lo = model.evaluate(TrafficMatrix::uniform(16, 0.01));
  const auto hi = model.evaluate(TrafficMatrix::uniform(16, 0.08));
  EXPECT_GT(hi.avg_latency_cycles, lo.avg_latency_cycles);
  EXPECT_GT(hi.avg_channel_waiting_cycles, lo.avg_channel_waiting_cycles);
  EXPECT_GT(hi.max_link_utilization, lo.max_link_utilization);
}

TEST(Analytical, ZeroLoadLatencyIsHopsTimesHopCost) {
  Mesh m(4, 4);
  NocParams p;
  AnalyticalNocModel model(m, p);
  // Single flow at negligible rate between adjacent nodes.
  TrafficMatrix t(16);
  t.rate(0, 1) = 1e-9;
  const auto r = model.evaluate(t);
  EXPECT_NEAR(r.avg_latency_cycles, p.router_delay_cycles + p.packet_service_cycles, 1e-3);
}

TEST(Analytical, DetectsSaturation) {
  Mesh m(4, 4);
  AnalyticalNocModel model(m);
  const auto r = model.evaluate(TrafficMatrix::uniform(16, 0.5));
  EXPECT_TRUE(r.saturated);
}

TEST(Simulator, MatchesAnalyticalAtLowLoad) {
  Mesh m(4, 4);
  AnalyticalNocModel model(m);
  NocSimulator sim(m);
  const auto t = TrafficMatrix::uniform(16, 0.01);
  SimConfig cfg;
  cfg.seed = 3;
  const auto s = sim.simulate(t, cfg);
  const auto a = model.evaluate(t);
  EXPECT_NEAR(a.avg_latency_cycles, s.avg_latency_cycles, 0.15 * s.avg_latency_cycles);
  EXPECT_NEAR(s.delivered_rate, t.total_rate(), 0.1 * t.total_rate());
}

TEST(Simulator, LatencyGrowsWithLoad) {
  Mesh m(4, 4);
  NocSimulator sim(m);
  SimConfig cfg;
  const auto lo = sim.simulate(TrafficMatrix::uniform(16, 0.01), cfg);
  const auto hi = sim.simulate(TrafficMatrix::uniform(16, 0.06), cfg);
  EXPECT_GT(hi.avg_latency_cycles, lo.avg_latency_cycles);
  EXPECT_GE(hi.p95_latency_cycles, hi.avg_latency_cycles);
}

TEST(Simulator, DeterministicGivenSeed) {
  Mesh m(4, 4);
  NocSimulator sim(m);
  SimConfig cfg;
  cfg.seed = 5;
  const auto a = sim.simulate(TrafficMatrix::uniform(16, 0.02), cfg);
  const auto b = sim.simulate(TrafficMatrix::uniform(16, 0.02), cfg);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
}

class SvrFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (double r : {0.005, 0.015, 0.025, 0.035}) {
      traffics_.push_back(TrafficMatrix::uniform(16, r));
      traffics_.push_back(TrafficMatrix::transpose(4, 4, r));
      traffics_.push_back(TrafficMatrix::hotspot(16, 5, r));
    }
    NocSimulator sim(mesh_);
    for (std::size_t i = 0; i < traffics_.size(); ++i) {
      SimConfig cfg;
      cfg.seed = 50 + i;
      cfg.measure_cycles = 30000.0;
      lat_.push_back(sim.simulate(traffics_[i], cfg).avg_latency_cycles);
    }
  }
  Mesh mesh_{4, 4};
  std::vector<TrafficMatrix> traffics_;
  std::vector<double> lat_;
};

TEST_F(SvrFixture, CorrectionImprovesOnAnalytical) {
  SvrNocModel model(mesh_);
  model.fit(traffics_, lat_);
  double err_svr = 0.0, err_ana = 0.0;
  for (std::size_t i = 0; i < traffics_.size(); ++i) {
    err_svr += std::abs(model.predict(traffics_[i]) - lat_[i]);
    err_ana += std::abs(model.analytical(traffics_[i]) - lat_[i]);
  }
  EXPECT_LE(err_svr, err_ana);
}

TEST_F(SvrFixture, OnlineResidualTracksShift) {
  SvrNocModel model(mesh_);
  model.fit(traffics_, lat_);
  // Pretend the platform drifted: every measured latency is 20% higher.
  const auto& t0 = traffics_[2];
  const double shifted = model.predict(t0) * 1.2;
  const double before = std::abs(model.predict(t0) - shifted);
  for (int i = 0; i < 10; ++i) model.update(t0, shifted);
  const double after = std::abs(model.predict(t0) - shifted);
  EXPECT_LT(after, before * 0.3);
}

TEST_F(SvrFixture, UsageErrors) {
  SvrNocModel model(mesh_);
  EXPECT_THROW(model.predict(traffics_[0]), std::logic_error);
  EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace oal::noc
