// Tests for tabular Q-learning and DQN on small synthetic MDPs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dqn.h"
#include "ml/qlearn.h"

namespace oal::ml {
namespace {

using common::Vec;

TEST(HashState, DistinctForDifferentComponents) {
  EXPECT_NE(hash_state({1, 2, 3}), hash_state({1, 2, 4}));
  EXPECT_NE(hash_state({0}), hash_state({0, 0}));
  EXPECT_EQ(hash_state({5, -1}), hash_state({5, -1}));
}

TEST(TabularQ, LearnsTwoStateChain) {
  // Two states; action 1 in state 0 yields reward 1 and stays, action 0
  // yields 0.  Greedy policy must prefer action 1.
  QLearnConfig cfg;
  cfg.alpha = 0.5;
  cfg.epsilon_init = 0.5;
  cfg.epsilon_min = 0.1;
  TabularQ q(2, cfg);
  const std::uint64_t s0 = hash_state({0});
  for (int i = 0; i < 300; ++i) {
    const std::size_t a = q.select_action(s0);
    q.update(s0, a, a == 1 ? 1.0 : 0.0, s0);
  }
  EXPECT_EQ(q.greedy_action(s0), 1u);
  EXPECT_GT(q.q_value(s0, 1), q.q_value(s0, 0));
}

TEST(TabularQ, PropagatesValueThroughChain) {
  // s0 -a1-> s1 -a1-> goal(r=1).  Q(s0, a1) must become positive via
  // bootstrapping even though the immediate reward is zero.
  QLearnConfig cfg;
  cfg.alpha = 0.3;
  cfg.gamma = 0.9;
  TabularQ q(2, cfg);
  const std::uint64_t s0 = hash_state({0}), s1 = hash_state({1}), g = hash_state({2});
  for (int i = 0; i < 500; ++i) {
    q.update(s0, 1, 0.0, s1);
    q.update(s1, 1, 1.0, g);
  }
  EXPECT_GT(q.q_value(s0, 1), 0.5);
}

TEST(TabularQ, EpsilonDecays) {
  QLearnConfig cfg;
  cfg.epsilon_init = 0.5;
  cfg.epsilon_min = 0.01;
  cfg.epsilon_decay = 0.9;
  TabularQ q(3, cfg);
  const double e0 = q.epsilon();
  for (int i = 0; i < 100; ++i) q.select_action(hash_state({i}));
  EXPECT_LT(q.epsilon(), e0);
  EXPECT_GE(q.epsilon(), cfg.epsilon_min);
}

TEST(TabularQ, StorageGrowsWithVisitedStates) {
  TabularQ q(4);
  EXPECT_EQ(q.num_states_visited(), 0u);
  for (int i = 0; i < 50; ++i) q.update(hash_state({i}), 0, 0.0, hash_state({i + 1}));
  EXPECT_EQ(q.num_states_visited(), 50u);
  EXPECT_EQ(q.storage_bytes(), 50u * (8u + 4u * 8u));
}

TEST(TabularQ, InvalidUsageThrows) {
  EXPECT_THROW(TabularQ(0), std::invalid_argument);
  TabularQ q(2);
  EXPECT_THROW(q.update(0, 5, 0.0, 1), std::invalid_argument);
}

TEST(Dqn, LearnsStatelessBandit) {
  // Single continuous state, 3 actions, action 2 always best.
  DqnConfig cfg;
  cfg.hidden = {16};
  cfg.min_replay = 16;
  cfg.batch_size = 16;
  cfg.epsilon_decay = 0.99;
  cfg.seed = 21;
  Dqn dqn(2, 3, cfg);
  const Vec s{0.5, -0.5};
  for (int i = 0; i < 400; ++i) {
    const std::size_t a = dqn.select_action(s);
    const double r = a == 2 ? 1.0 : a == 1 ? 0.2 : 0.0;
    dqn.observe(s, a, r, s);
  }
  EXPECT_EQ(dqn.greedy_action(s), 2u);
}

TEST(Dqn, StateDependentPolicy) {
  // Best action depends on the sign of the state's first component.
  DqnConfig cfg;
  cfg.hidden = {16};
  cfg.min_replay = 32;
  cfg.batch_size = 16;
  cfg.gamma = 0.0;  // bandit
  cfg.epsilon_min = 0.2;
  cfg.seed = 22;
  Dqn dqn(1, 2, cfg);
  common::Rng rng(23);
  for (int i = 0; i < 1200; ++i) {
    const Vec s{rng.uniform(-1, 1)};
    const std::size_t a = dqn.select_action(s);
    const double r = (s[0] > 0) == (a == 1) ? 1.0 : -1.0;
    dqn.observe(s, a, r, s);
  }
  EXPECT_EQ(dqn.greedy_action({0.8}), 1u);
  EXPECT_EQ(dqn.greedy_action({-0.8}), 0u);
}

TEST(Dqn, ReplayBounded) {
  DqnConfig cfg;
  cfg.replay_capacity = 64;
  cfg.min_replay = 1000000;  // never train (keeps the test fast)
  Dqn dqn(1, 2, cfg);
  for (int i = 0; i < 200; ++i) dqn.observe({0.0}, 0, 0.0, {0.0});
  EXPECT_LE(dqn.replay_size(), 64u);
}

TEST(Dqn, InvalidUsageThrows) {
  DqnConfig cfg;
  Dqn dqn(2, 2, cfg);
  EXPECT_THROW(dqn.observe({1.0}, 0, 0.0, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(dqn.observe({1.0, 2.0}, 7, 0.0, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace oal::ml
