// Unit tests for the dense linear algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"

namespace oal::common {
namespace {

TEST(Mat, ConstructAndIndex) {
  Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Mat, InitializerListRejectsRagged) {
  EXPECT_THROW(Mat({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Mat, IdentityAndDiag) {
  const Mat i = Mat::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Mat d = Mat::diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Mat, Transpose) {
  const Mat m{{1, 2, 3}, {4, 5, 6}};
  const Mat t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Mat, MultiplyMatchesHandComputation) {
  const Mat a{{1, 2}, {3, 4}};
  const Mat b{{5, 6}, {7, 8}};
  const Mat c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Mat, MatVecProduct) {
  const Mat a{{1, 2}, {3, 4}};
  const Vec v = a * Vec{1.0, -1.0};
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

TEST(Mat, SizeMismatchThrows) {
  const Mat a(2, 3);
  const Mat b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  const Vec bad{1.0, 2.0};
  EXPECT_THROW(a * bad, std::invalid_argument);
}

TEST(VecOps, DotAddSubScaleNorm) {
  const Vec a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(add(a, b)[2], 9.0);
  EXPECT_DOUBLE_EQ(sub(b, a)[0], 3.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0)[1], 4.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{3.0, 4.0}), 5.0);
}

TEST(VecOps, Outer) {
  const Mat o = outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(LuSolve, RecoversKnownSolution) {
  const Mat a{{4, 3}, {6, 3}};
  const Vec x = lu_solve(a, Vec{10, 12});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  const Mat a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, Vec{1, 2}), std::runtime_error);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the initial diagonal: fails without partial pivoting.
  const Mat a{{0, 1}, {1, 0}};
  const Vec x = lu_solve(a, Vec{3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  const Mat a{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const Mat ai = inverse(a);
  const Mat prod = a * ai;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Determinant, MatchesClosedForm) {
  EXPECT_NEAR(determinant(Mat{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Mat::identity(4)), 1.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs) {
  const Mat a{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}};
  const Mat l = cholesky(a);
  const Mat rec = l * l.transpose();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  EXPECT_THROW(cholesky(Mat{{1, 2}, {2, 1}}), std::runtime_error);
}

TEST(CholeskySolve, MatchesLu) {
  const Mat a{{4, 2}, {2, 5}};
  const Vec b{6, 9};
  const Vec x1 = cholesky_solve(a, b);
  const Vec x2 = lu_solve(a, b);
  EXPECT_NEAR(x1[0], x2[0], 1e-12);
  EXPECT_NEAR(x1[1], x2[1], 1e-12);
}

TEST(Eigenvalues, DiagonalMatrix) {
  const Eigenvalues ev = eigenvalues(Mat::diag({3.0, -1.0, 0.5}));
  ASSERT_EQ(ev.real.size(), 3u);
  double sum = 0.0, prod = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    sum += ev.real[i];
    prod *= ev.real[i];
    EXPECT_NEAR(ev.imag[i], 0.0, 1e-9);
  }
  EXPECT_NEAR(sum, 2.5, 1e-9);
  EXPECT_NEAR(prod, -1.5, 1e-9);
}

TEST(Eigenvalues, ComplexPair) {
  // Rotation-like matrix: eigenvalues a +- bi.
  const Mat a{{1, -2}, {2, 1}};
  const Eigenvalues ev = eigenvalues(a);
  ASSERT_EQ(ev.real.size(), 2u);
  EXPECT_NEAR(ev.real[0], 1.0, 1e-9);
  EXPECT_NEAR(std::abs(ev.imag[0]), 2.0, 1e-9);
}

TEST(Eigenvalues, TraceInvariantOnLargerMatrix) {
  Mat a(6, 6);
  // Deterministic pseudo-random-ish fill.
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      a(r, c) = std::sin(static_cast<double>(3 * r + 5 * c + 1));
  const Eigenvalues ev = eigenvalues(a);
  ASSERT_EQ(ev.real.size(), 6u);
  double sum_re = 0.0;
  for (double v : ev.real) sum_re += v;
  EXPECT_NEAR(sum_re, a.trace(), 1e-7);
}

TEST(SpectralRadius, StableSystemBelowOne) {
  const Mat a{{0.5, 0.1}, {0.0, 0.3}};
  EXPECT_NEAR(spectral_radius(a), 0.5, 1e-9);
}

}  // namespace
}  // namespace oal::common
