// Unit tests for the dense linear algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"

namespace oal::common {
namespace {

TEST(Mat, ConstructAndIndex) {
  Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Mat, InitializerListRejectsRagged) {
  EXPECT_THROW(Mat({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Mat, IdentityAndDiag) {
  const Mat i = Mat::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Mat d = Mat::diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Mat, Transpose) {
  const Mat m{{1, 2, 3}, {4, 5, 6}};
  const Mat t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Mat, MultiplyMatchesHandComputation) {
  const Mat a{{1, 2}, {3, 4}};
  const Mat b{{5, 6}, {7, 8}};
  const Mat c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Mat, MatVecProduct) {
  const Mat a{{1, 2}, {3, 4}};
  const Vec v = a * Vec{1.0, -1.0};
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

TEST(Mat, SizeMismatchThrows) {
  const Mat a(2, 3);
  const Mat b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  const Vec bad{1.0, 2.0};
  EXPECT_THROW(a * bad, std::invalid_argument);
}

TEST(VecOps, DotAddSubScaleNorm) {
  const Vec a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(add(a, b)[2], 9.0);
  EXPECT_DOUBLE_EQ(sub(b, a)[0], 3.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0)[1], 4.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{3.0, 4.0}), 5.0);
}

TEST(VecOps, Outer) {
  const Mat o = outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(LuSolve, RecoversKnownSolution) {
  const Mat a{{4, 3}, {6, 3}};
  const Vec x = lu_solve(a, Vec{10, 12});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  const Mat a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, Vec{1, 2}), std::runtime_error);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the initial diagonal: fails without partial pivoting.
  const Mat a{{0, 1}, {1, 0}};
  const Vec x = lu_solve(a, Vec{3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  const Mat a{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const Mat ai = inverse(a);
  const Mat prod = a * ai;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Determinant, MatchesClosedForm) {
  EXPECT_NEAR(determinant(Mat{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Mat::identity(4)), 1.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs) {
  const Mat a{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}};
  const Mat l = cholesky(a);
  const Mat rec = l * l.transpose();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  EXPECT_THROW(cholesky(Mat{{1, 2}, {2, 1}}), std::runtime_error);
}

TEST(CholeskySolve, MatchesLu) {
  const Mat a{{4, 2}, {2, 5}};
  const Vec b{6, 9};
  const Vec x1 = cholesky_solve(a, b);
  const Vec x2 = lu_solve(a, b);
  EXPECT_NEAR(x1[0], x2[0], 1e-12);
  EXPECT_NEAR(x1[1], x2[1], 1e-12);
}

TEST(Eigenvalues, DiagonalMatrix) {
  const Eigenvalues ev = eigenvalues(Mat::diag({3.0, -1.0, 0.5}));
  ASSERT_EQ(ev.real.size(), 3u);
  double sum = 0.0, prod = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    sum += ev.real[i];
    prod *= ev.real[i];
    EXPECT_NEAR(ev.imag[i], 0.0, 1e-9);
  }
  EXPECT_NEAR(sum, 2.5, 1e-9);
  EXPECT_NEAR(prod, -1.5, 1e-9);
}

TEST(Eigenvalues, ComplexPair) {
  // Rotation-like matrix: eigenvalues a +- bi.
  const Mat a{{1, -2}, {2, 1}};
  const Eigenvalues ev = eigenvalues(a);
  ASSERT_EQ(ev.real.size(), 2u);
  EXPECT_NEAR(ev.real[0], 1.0, 1e-9);
  EXPECT_NEAR(std::abs(ev.imag[0]), 2.0, 1e-9);
}

TEST(Eigenvalues, TraceInvariantOnLargerMatrix) {
  Mat a(6, 6);
  // Deterministic pseudo-random-ish fill.
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      a(r, c) = std::sin(static_cast<double>(3 * r + 5 * c + 1));
  const Eigenvalues ev = eigenvalues(a);
  ASSERT_EQ(ev.real.size(), 6u);
  double sum_re = 0.0;
  for (double v : ev.real) sum_re += v;
  EXPECT_NEAR(sum_re, a.trace(), 1e-7);
}

TEST(Gemm, FromRowsStacksVectors) {
  const Mat m = Mat::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(Mat::from_rows({}), std::invalid_argument);
  EXPECT_THROW(Mat::from_rows({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

// The training kernels must agree with the reference operators bitwise on
// zero-free inputs; unlike operator* they must also keep exact accumulation
// order when elements are zero (no zero-skip), which the masked-gradient
// training path relies on.
TEST(Gemm, MatmulMatchesOperator) {
  Mat a(3, 4), b(4, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = 0.3 * static_cast<double>(i) - 0.7 * static_cast<double>(j) + 0.1;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) b(i, j) = 1.1 * static_cast<double>(i) + 0.2 * static_cast<double>(j) - 1.0;
  const Mat ref = a * b;
  const Mat c = matmul(a, b);
  ASSERT_EQ(c.rows(), ref.rows());
  ASSERT_EQ(c.cols(), ref.cols());
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(Gemm, FusedTransposesMatchExplicitTranspose) {
  Mat a(4, 3), b(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = std::sin(1.0 + static_cast<double>(3 * i + j));
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = std::cos(2.0 + static_cast<double>(2 * i + j));
  }
  const Mat tn = matmul_tn(a, b);  // A^T * B: (3x2)
  const Mat tn_ref = a.transpose() * b;
  ASSERT_EQ(tn.rows(), 3u);
  ASSERT_EQ(tn.cols(), 2u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(tn(i, j), tn_ref(i, j), 1e-12);

  const Mat nt = matmul_nt(a.transpose(), b.transpose());  // (3x4)*(4x2)^T^T... A^T * B
  ASSERT_EQ(nt.rows(), 3u);
  ASSERT_EQ(nt.cols(), 2u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(nt(i, j), tn_ref(i, j), 1e-12);

  EXPECT_THROW(matmul_tn(a, Mat(3, 2)), std::invalid_argument);
  EXPECT_THROW(matmul_nt(a, Mat(2, 2)), std::invalid_argument);
}

TEST(Gemm, KernelsDoNotSkipZeros) {
  // A one-hot row times a weight matrix must pick the matching row exactly —
  // including when other entries are exactly zero (operator*'s zero-skip
  // would change the accumulation pattern the bitwise contract fixes).
  Mat onehot(1, 3);
  onehot(0, 1) = 1.0;
  Mat w(3, 2);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) w(i, j) = static_cast<double>(10 * i + j);
  const Mat r = matmul(onehot, w);
  EXPECT_DOUBLE_EQ(r(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 11.0);
}

TEST(Gemm, RowBroadcastAndColSums) {
  Mat m{{1, 2}, {3, 4}, {5, 6}};
  add_row_broadcast(m, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 26.0);
  const Vec s = col_sums(m);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 39.0);
  EXPECT_DOUBLE_EQ(s[1], 72.0);
  EXPECT_THROW(add_row_broadcast(m, {1.0}), std::invalid_argument);
}

TEST(SpectralRadius, StableSystemBelowOne) {
  const Mat a{{0.5, 0.1}, {0.0, 0.3}};
  EXPECT_NEAR(spectral_radius(a), 0.5, 1e-9);
}

}  // namespace
}  // namespace oal::common
