// Tests for DRM controllers: governors, RL baselines and online-IL.
#include <gtest/gtest.h>

#include "core/governors.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/runner.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

soc::SnippetResult run_once(soc::BigLittlePlatform& plat, const soc::SocConfig& c) {
  common::Rng rng(1);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 1, rng);
  return plat.execute(trace[0], c);
}

TEST(ApplyRlAction, AllActionsStayValid) {
  soc::ConfigSpace space;
  const soc::SocConfig corner{1, 0, 0, 0};
  const soc::SocConfig center{2, 2, 6, 9};
  for (std::size_t a = 0; a < kNumRlActions; ++a) {
    EXPECT_TRUE(space.valid(apply_rl_action(space, corner, a)));
    EXPECT_TRUE(space.valid(apply_rl_action(space, center, a)));
  }
}

TEST(ApplyRlAction, MovesSingleKnob) {
  soc::ConfigSpace space;
  const soc::SocConfig c{2, 2, 6, 9};
  EXPECT_EQ(apply_rl_action(space, c, 0), c);                      // hold
  EXPECT_EQ(apply_rl_action(space, c, 1).num_little, 3);           // +little
  EXPECT_EQ(apply_rl_action(space, c, 4).num_big, 1);              // -big
  EXPECT_EQ(apply_rl_action(space, c, 7).big_freq_idx, 10);        // +f_big
}

TEST(Governors, PerformancePinsMax) {
  soc::BigLittlePlatform plat;
  PerformanceGovernor gov(plat.space());
  const auto next = gov.step(run_once(plat, {2, 2, 5, 5}), {2, 2, 5, 5});
  EXPECT_EQ(next, (soc::SocConfig{4, 4, 12, 18}));
}

TEST(Governors, PowersavePinsMin) {
  soc::BigLittlePlatform plat;
  PowersaveGovernor gov;
  const auto next = gov.step(run_once(plat, {2, 2, 5, 5}), {2, 2, 5, 5});
  EXPECT_EQ(next, (soc::SocConfig{4, 4, 0, 0}));
}

TEST(Governors, OndemandJumpsToMaxUnderLoad) {
  soc::BigLittlePlatform plat;
  OndemandGovernor gov(plat.space());
  soc::SnippetResult r = run_once(plat, {4, 4, 5, 5});
  r.counters.little_cluster_utilization = 0.99;
  r.counters.big_cluster_utilization = 0.99;
  const auto next = gov.step(r, {4, 4, 5, 5});
  EXPECT_EQ(next.little_freq_idx, 12);
  EXPECT_EQ(next.big_freq_idx, 18);
}

TEST(Governors, OndemandScalesDownWhenIdle) {
  soc::BigLittlePlatform plat;
  OndemandGovernor gov(plat.space());
  soc::SnippetResult r = run_once(plat, {4, 4, 10, 15});
  r.counters.little_cluster_utilization = 0.10;
  r.counters.big_cluster_utilization = 0.10;
  const auto next = gov.step(r, {4, 4, 10, 15});
  EXPECT_LT(next.little_freq_idx, 10);
  EXPECT_LT(next.big_freq_idx, 15);
}

TEST(Governors, InteractiveRampsAndDecays) {
  soc::BigLittlePlatform plat;
  InteractiveGovernor gov(plat.space());
  soc::SnippetResult busy = run_once(plat, {4, 4, 5, 5});
  busy.counters.little_cluster_utilization = 0.95;
  busy.counters.big_cluster_utilization = 0.95;
  const auto up = gov.step(busy, {4, 4, 5, 5});
  EXPECT_GT(up.little_freq_idx, 5);
  soc::SnippetResult idle = busy;
  idle.counters.little_cluster_utilization = 0.1;
  idle.counters.big_cluster_utilization = 0.1;
  const auto down = gov.step(idle, {4, 4, 5, 5});
  EXPECT_EQ(down.little_freq_idx, 4);
}

TEST(Governors, StaticHolds) {
  soc::BigLittlePlatform plat;
  StaticController ctl({3, 1, 2, 2});
  EXPECT_EQ(ctl.step(run_once(plat, {4, 4, 0, 0}), {4, 4, 0, 0}), (soc::SocConfig{3, 1, 2, 2}));
}

TEST(QLearningController, ProducesValidConfigsAndLearnsStates) {
  soc::BigLittlePlatform plat;
  QLearningController ctl(plat.space());
  ctl.begin_run({2, 2, 6, 9});
  common::Rng rng(2);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Qsort"), 50, rng);
  soc::SocConfig c{2, 2, 6, 9};
  for (const auto& s : trace) {
    const auto r = plat.execute(s, c);
    c = ctl.step(r, c);
    EXPECT_TRUE(plat.space().valid(c));
  }
  EXPECT_GT(ctl.table_states(), 1u);
  EXPECT_GT(ctl.storage_bytes(), 0u);
}

TEST(DqnController, ProducesValidConfigs) {
  soc::BigLittlePlatform plat;
  ml::DqnConfig cfg;
  cfg.min_replay = 8;
  cfg.batch_size = 4;
  DqnController ctl(plat.space(), cfg);
  ctl.begin_run({2, 2, 6, 9});
  common::Rng rng(3);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("AES"), 30, rng);
  soc::SocConfig c{2, 2, 6, 9};
  for (const auto& s : trace) {
    const auto r = plat.execute(s, c);
    c = ctl.step(r, c);
    EXPECT_TRUE(plat.space().valid(c));
  }
}

class OnlineIlFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(5);
    const auto apps = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
    data_ = collect_offline_data(plat_, apps, Objective::kEnergy, 10, 4, rng);
    policy_.train_offline(data_.policy, rng);
    models_.bootstrap(data_.model_samples);
  }
  soc::BigLittlePlatform plat_;
  IlPolicy policy_{soc::ConfigSpace{}};
  OnlineSocModels models_{soc::ConfigSpace{}};
  OfflineData data_;
};

TEST_F(OnlineIlFixture, StepsProduceValidConfigsAndPolicyDecisions) {
  OnlineIlController ctl(plat_.space(), policy_, models_);
  common::Rng rng(6);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Kmeans"), 40, rng);
  soc::SocConfig c{4, 4, 8, 10};
  for (const auto& s : trace) {
    const auto r = plat_.execute(s, c);
    c = ctl.step(r, c);
    EXPECT_TRUE(plat_.space().valid(c));
    ASSERT_TRUE(ctl.last_policy_decision().has_value());
    EXPECT_TRUE(plat_.space().valid(*ctl.last_policy_decision()));
  }
}

TEST_F(OnlineIlFixture, PolicyUpdatesFireAtBufferCapacity) {
  OnlineIlConfig cfg;
  cfg.buffer_capacity = 10;
  cfg.update_epochs = 2;
  OnlineIlController ctl(plat_.space(), policy_, models_, cfg);
  common::Rng rng(7);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("PCA"), 35, rng);
  soc::SocConfig c{4, 4, 8, 10};
  for (const auto& s : trace) c = ctl.step(plat_.execute(s, c), c);
  EXPECT_EQ(ctl.policy_updates(), 3u);   // 35 steps / 10 per buffer
  EXPECT_EQ(ctl.buffer_fill(), 5u);
}

TEST_F(OnlineIlFixture, ExplorationDecaysAndReArmsOnWorkloadChange) {
  OnlineIlConfig cfg;
  cfg.explore_init = 0.2;
  cfg.explore_min = 0.01;
  cfg.explore_decay = 0.9;
  OnlineIlController ctl(plat_.space(), policy_, models_, cfg);
  common::Rng rng(8);
  const auto a = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("SHA"), 60, rng);
  soc::SocConfig c{4, 4, 8, 10};
  for (const auto& s : a) c = ctl.step(plat_.execute(s, c), c);
  const double decayed = ctl.exploration_rate();
  EXPECT_LT(decayed, 0.05);
  // Sudden switch to a very different workload: innovation spike re-arms it.
  const auto b = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("PCA"), 3, rng);
  for (const auto& s : b) c = ctl.step(plat_.execute(s, c), c);
  EXPECT_GT(ctl.exploration_rate(), decayed);
}

TEST_F(OnlineIlFixture, OfflineControllerIsPurePolicy) {
  OfflineIlController ctl(plat_.space(), policy_);
  common::Rng rng(9);
  const auto trace =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("BML"), 5, rng);
  soc::SocConfig c{4, 4, 8, 10};
  const auto r = plat_.execute(trace[0], c);
  const auto next = ctl.step(r, c);
  EXPECT_EQ(next, *ctl.last_policy_decision());
}

}  // namespace
}  // namespace oal::core
