// Tests for the integrated-GPU platform model.
#include <gtest/gtest.h>

#include "gpu/gpu_model.h"

namespace oal::gpu {
namespace {

FrameDescriptor medium_frame() {
  FrameDescriptor f;
  f.render_cycles = 20e6;
  f.mem_bytes = 12e6;
  f.cpu_cycles = 6e6;
  return f;
}

constexpr double kPeriod30 = 1.0 / 30.0;

TEST(GpuPlatform, ValidityChecks) {
  GpuPlatform gpu;
  EXPECT_TRUE(gpu.valid({0, 1}));
  EXPECT_TRUE(gpu.valid({17, 4}));
  EXPECT_FALSE(gpu.valid({-1, 1}));
  EXPECT_FALSE(gpu.valid({18, 1}));
  EXPECT_FALSE(gpu.valid({0, 0}));
  EXPECT_FALSE(gpu.valid({0, 5}));
  EXPECT_THROW(gpu.render_ideal(medium_frame(), {0, 0}, kPeriod30), std::invalid_argument);
  EXPECT_THROW(gpu.render_ideal(medium_frame(), {0, 1}, 0.0), std::invalid_argument);
}

TEST(GpuPlatform, VoltageMonotone) {
  GpuPlatform gpu;
  EXPECT_LT(gpu.voltage(300), gpu.voltage(700));
  EXPECT_LT(gpu.voltage(700), gpu.voltage(1150));
}

TEST(GpuPlatform, FrequencyAndSlicesSpeedUpFrames) {
  GpuPlatform gpu;
  const auto slow = gpu.render_ideal(medium_frame(), {2, 1}, kPeriod30);
  const auto fast_f = gpu.render_ideal(medium_frame(), {12, 1}, kPeriod30);
  const auto fast_s = gpu.render_ideal(medium_frame(), {2, 4}, kPeriod30);
  EXPECT_LT(fast_f.frame_time_s, slow.frame_time_s);
  EXPECT_LT(fast_s.frame_time_s, slow.frame_time_s);
}

TEST(GpuPlatform, SliceScalingIsSubLinear) {
  GpuPlatform gpu;
  FrameDescriptor f = medium_frame();
  f.mem_exposed = 0.0;  // isolate compute scaling
  const double t1 = gpu.render_ideal(f, {8, 1}, kPeriod30).frame_time_s;
  const double t4 = gpu.render_ideal(f, {8, 4}, kPeriod30).frame_time_s;
  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 4.0);
}

TEST(GpuPlatform, MemoryTimeFrequencyIndependent) {
  GpuPlatform gpu;
  FrameDescriptor f = medium_frame();
  f.render_cycles = 1e3;  // negligible compute
  f.mem_exposed = 1.0;
  const double t_lo = gpu.render_ideal(f, {0, 4}, kPeriod30).frame_time_s;
  const double t_hi = gpu.render_ideal(f, {17, 4}, kPeriod30).frame_time_s;
  EXPECT_NEAR(t_lo, t_hi, t_lo * 0.02);
}

TEST(GpuPlatform, DeadlineDetection) {
  GpuPlatform gpu;
  FrameDescriptor heavy = medium_frame();
  heavy.render_cycles = 300e6;
  EXPECT_FALSE(gpu.render_ideal(heavy, {0, 1}, kPeriod30).deadline_met);
  FrameDescriptor light = medium_frame();
  light.render_cycles = 2e6;
  EXPECT_TRUE(gpu.render_ideal(light, {10, 2}, kPeriod30).deadline_met);
}

TEST(GpuPlatform, EnergyScopesNest) {
  GpuPlatform gpu;
  const auto r = gpu.render_ideal(medium_frame(), {8, 2}, kPeriod30);
  EXPECT_GT(r.gpu_energy_j, 0.0);
  EXPECT_GT(r.pkg_energy_j, r.gpu_energy_j);
  EXPECT_GT(r.pkg_dram_energy_j, r.pkg_energy_j);
}

TEST(GpuPlatform, MoreSlicesCostMorePowerAtFixedWork) {
  GpuPlatform gpu;
  FrameDescriptor light = medium_frame();
  light.render_cycles = 3e6;  // light enough that both configs meet deadline
  const auto s1 = gpu.render_ideal(light, {4, 1}, kPeriod30);
  const auto s4 = gpu.render_ideal(light, {4, 4}, kPeriod30);
  ASSERT_TRUE(s1.deadline_met);
  ASSERT_TRUE(s4.deadline_met);
  // Four slices finish faster but leak 4x while idling: worse energy for a
  // light frame — this asymmetry is what ENMPC exploits (SharkDash case).
  EXPECT_GT(s4.gpu_energy_j, s1.gpu_energy_j);
}

TEST(GpuPlatform, RaceToIdleAccounting) {
  GpuPlatform gpu;
  // Same config, lighter frame -> less busy energy but same leakage floor.
  const auto heavy = gpu.render_ideal(medium_frame(), {10, 2}, kPeriod30);
  FrameDescriptor lf = medium_frame();
  lf.render_cycles = 4e6;
  const auto light = gpu.render_ideal(lf, {10, 2}, kPeriod30);
  EXPECT_LT(light.gpu_energy_j, heavy.gpu_energy_j);
  EXPECT_GT(light.gpu_energy_j, 0.0);
}

TEST(GpuPlatform, TransitionCosts) {
  GpuPlatform gpu;
  const auto none = gpu.transition_cost({5, 2}, {5, 2});
  EXPECT_DOUBLE_EQ(none.time_s, 0.0);
  EXPECT_DOUBLE_EQ(none.energy_j, 0.0);
  const auto dvfs = gpu.transition_cost({5, 2}, {6, 2});
  const auto slice = gpu.transition_cost({5, 2}, {5, 3});
  const auto both = gpu.transition_cost({5, 2}, {6, 3});
  EXPECT_GT(dvfs.time_s, 0.0);
  EXPECT_GT(slice.time_s, dvfs.time_s);     // slice changes are the slow knob
  EXPECT_GT(slice.energy_j, dvfs.energy_j);
  EXPECT_NEAR(both.time_s, dvfs.time_s + slice.time_s, 1e-12);
}

TEST(GpuPlatform, BestConfigMeetsDeadlineAndMinimizesEnergy) {
  GpuPlatform gpu;
  const auto f = medium_frame();
  const GpuConfig best = gpu.best_config(f, kPeriod30, 0);
  const auto rb = gpu.render_ideal(f, best, kPeriod30);
  EXPECT_TRUE(rb.deadline_met);
  for (int s = 1; s <= 4; ++s) {
    for (int fi = 0; fi < 18; ++fi) {
      const auto r = gpu.render_ideal(f, {fi, s}, kPeriod30);
      if (r.deadline_met) {
        EXPECT_LE(rb.gpu_energy_j, r.gpu_energy_j + 1e-12);
      }
    }
  }
}

TEST(GpuPlatform, BestConfigFallsBackToFastestWhenInfeasible) {
  GpuPlatform gpu;
  FrameDescriptor monster = medium_frame();
  monster.render_cycles = 1e9;
  const GpuConfig best = gpu.best_config(monster, kPeriod30, 0);
  // Must pick something near max throughput.
  EXPECT_EQ(best.num_slices, 4);
  EXPECT_GE(best.freq_idx, 16);
}

TEST(GpuPlatform, NoisyRenderIsUnbiased) {
  GpuPlatform gpu({}, 99);
  const auto ideal = gpu.render_ideal(medium_frame(), {8, 2}, kPeriod30);
  double sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) sum += gpu.render(medium_frame(), {8, 2}, kPeriod30).frame_time_s;
  EXPECT_NEAR(sum / n, ideal.frame_time_s, ideal.frame_time_s * 0.01);
}

}  // namespace
}  // namespace oal::gpu
