// Tests for GPU online models, the multi-rate NMPC/explicit-NMPC controllers
// (including the budget-feasibility predicate of the thermal-aware variant)
// and the GPU frame-loop runner.
#include <gtest/gtest.h>

#include "core/gpu_controller.h"
#include "core/gpu_models.h"
#include "core/nmpc.h"
#include "soc/thermal_platform.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::core {
namespace {

constexpr double kPeriod = 1.0 / 30.0;

class GpuModelsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(7);
    models_ = std::make_unique<GpuOnlineModels>(plat_);
    bootstrap_gpu_models(plat_, *models_, kPeriod, 400, rng);
  }
  gpu::GpuPlatform plat_;
  std::unique_ptr<GpuOnlineModels> models_;
};

TEST_F(GpuModelsFixture, FrameTimePredictionAccurate) {
  common::Rng rng(3);
  const auto frames = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 10, rng);
  for (const auto& f : frames) {
    GpuWorkloadState w;
    w.work_cycles = f.render_cycles;
    w.mem_bytes = f.mem_bytes;
    for (const gpu::GpuConfig c : {gpu::GpuConfig{4, 1}, gpu::GpuConfig{10, 2},
                                   gpu::GpuConfig{16, 4}}) {
      const auto truth = plat_.render_ideal(f, c, kPeriod);
      const double pred = models_->predict_frame_time_s(w, c);
      EXPECT_NEAR(pred, truth.frame_time_s, 0.12 * truth.frame_time_s)
          << "config " << c.freq_idx << "/" << c.num_slices;
    }
  }
}

TEST_F(GpuModelsFixture, EnergyPredictionAccurate) {
  common::Rng rng(4);
  const auto frames = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("FruitNinja"), 5, rng);
  for (const auto& f : frames) {
    GpuWorkloadState w;
    w.work_cycles = f.render_cycles;
    w.mem_bytes = f.mem_bytes;
    const gpu::GpuConfig c{8, 2};
    const auto truth = plat_.render_ideal(f, c, kPeriod);
    EXPECT_NEAR(models_->predict_gpu_energy_j(w, c, kPeriod), truth.gpu_energy_j,
                0.15 * truth.gpu_energy_j);
  }
}

TEST_F(GpuModelsFixture, SensitivityIsNegative) {
  GpuWorkloadState w;
  w.work_cycles = 20e6;
  // More frequency -> less frame time; the learned sensitivity must agree.
  EXPECT_LT(models_->frame_time_freq_sensitivity(w, {8, 2}), 0.0);
}

TEST_F(GpuModelsFixture, NmpcSolveRespectsDeadline) {
  NmpcGpuController nmpc(plat_, *models_);
  GpuWorkloadState w;
  w.work_cycles = 30e6;
  w.mem_bytes = 15e6;
  std::size_t evals = 0;
  const gpu::GpuConfig sol = nmpc.solve_slow(w, {9, 4}, &evals);
  EXPECT_TRUE(plat_.valid(sol));
  EXPECT_GT(evals, 0u);
  EXPECT_LE(models_->predict_frame_time_s(w, sol), kPeriod);
}

TEST_F(GpuModelsFixture, NmpcPrefersFewSlicesForLightLoad) {
  NmpcGpuController nmpc(plat_, *models_);
  GpuWorkloadState light;
  light.work_cycles = 4e6;
  light.mem_bytes = 3e6;
  GpuWorkloadState heavy;
  heavy.work_cycles = 70e6;
  heavy.mem_bytes = 40e6;
  std::size_t evals = 0;
  const auto sol_light = nmpc.solve_slow(light, {9, 4}, &evals);
  const auto sol_heavy = nmpc.solve_slow(heavy, {9, 4}, &evals);
  EXPECT_LT(sol_light.num_slices, sol_heavy.num_slices);
}

TEST_F(GpuModelsFixture, ProducerEnergyPriorMatchesPlatformProducerSide) {
  gpu::FrameDescriptor f;
  f.render_cycles = 25e6;
  f.mem_bytes = 18e6;
  f.cpu_cycles = 9e6;
  GpuWorkloadState w;
  w.cpu_cycles = f.cpu_cycles;
  w.mem_bytes = f.mem_bytes;
  const auto truth = plat_.render_ideal(f, {10, 2}, kPeriod);
  // The prior mirrors render_ideal's config-independent producer side
  // (CPU + package base + DRAM) exactly.
  EXPECT_DOUBLE_EQ(models_->producer_energy_prior_j(w, kPeriod),
                   truth.pkg_dram_energy_j - truth.gpu_energy_j);
}

TEST_F(GpuModelsFixture, BudgetPredicateConstrainsSlowSolve) {
  NmpcGpuController nmpc(plat_, *models_);
  GpuWorkloadState w;
  w.work_cycles = 30e6;
  w.mem_bytes = 15e6;
  std::size_t evals = 0;
  const gpu::GpuConfig blind = nmpc.solve_slow(w, {9, 4}, &evals);
  const double blind_power =
      (models_->predict_gpu_energy_j(w, blind, kPeriod) +
       models_->producer_energy_prior_j(w, kPeriod)) / kPeriod;

  // A budget below the blind pick's power forces a different, budget-feasible
  // solution (the predicate, not the arbiter, does the work).
  GpuBudgetState b;
  b.constrained = true;
  b.budget_w = 0.8 * blind_power;
  b.other_energy_j = models_->producer_energy_prior_j(w, kPeriod);
  const gpu::GpuConfig constrained = nmpc.solve_slow(w, {9, 4}, &evals, b);
  EXPECT_TRUE(plat_.valid(constrained));
  EXPECT_TRUE(constrained != blind);
  EXPECT_LE((models_->predict_gpu_energy_j(w, constrained, kPeriod) + b.other_energy_j) /
                kPeriod,
            b.budget_w);
}

TEST_F(GpuModelsFixture, InfeasibleBudgetFallsToTheThrottleFloor) {
  NmpcGpuController nmpc(plat_, *models_);
  GpuWorkloadState w;
  w.work_cycles = 30e6;
  w.mem_bytes = 15e6;
  GpuBudgetState b;
  b.constrained = true;
  b.budget_w = 0.05;  // below even the floor config's power
  b.other_energy_j = models_->producer_energy_prior_j(w, kPeriod);
  std::size_t evals = 0;
  // The fallback descends the shared firmware ladder all the way down: the
  // controller proposes the floor itself instead of bouncing off the arbiter.
  const gpu::GpuConfig sol = nmpc.solve_slow(w, {9, 4}, &evals, b);
  EXPECT_EQ(sol.freq_idx, 0);
  EXPECT_EQ(sol.num_slices, 1);
}

TEST_F(GpuModelsFixture, FastTrimNeverTrimsUpThroughBudget) {
  NmpcGpuController nmpc(plat_, *models_);
  GpuWorkloadState heavy;  // misses the deadline at low frequency: the trim
  heavy.work_cycles = 60e6;  // wants to escalate
  heavy.mem_bytes = 30e6;
  const gpu::GpuConfig current{4, 4};
  std::size_t evals = 0;
  const gpu::GpuConfig unconstrained = nmpc.fast_trim(heavy, current, &evals);
  ASSERT_GT(unconstrained.freq_idx, current.freq_idx);

  // Cap the budget at the current config's predicted power: the escalation
  // must stop at the budget instead of punching through it.
  GpuBudgetState b;
  b.constrained = true;
  b.other_energy_j = models_->producer_energy_prior_j(heavy, kPeriod);
  b.budget_w = (models_->predict_gpu_energy_j(heavy, current, kPeriod) + b.other_energy_j) /
               kPeriod;
  const gpu::GpuConfig capped = nmpc.fast_trim(heavy, current, &evals, b);
  EXPECT_LE(capped.freq_idx, current.freq_idx);
  EXPECT_LE((models_->predict_gpu_energy_j(heavy, capped, kPeriod) + b.other_energy_j) /
                kPeriod,
            b.budget_w + 1e-12);
}

TEST(GpuThrottleStep, FrequencyFirstThenSlicesToFloor) {
  gpu::GpuConfig c{2, 3};
  EXPECT_TRUE(soc::gpu_throttle_step(c));
  EXPECT_EQ(c, (gpu::GpuConfig{1, 3}));
  EXPECT_TRUE(soc::gpu_throttle_step(c));
  EXPECT_EQ(c, (gpu::GpuConfig{0, 3}));
  EXPECT_TRUE(soc::gpu_throttle_step(c));
  EXPECT_EQ(c, (gpu::GpuConfig{0, 2}));
  EXPECT_TRUE(soc::gpu_throttle_step(c));
  EXPECT_EQ(c, (gpu::GpuConfig{0, 1}));
  // The floor: 1 slice at minimum frequency is never stepped through.
  EXPECT_FALSE(soc::gpu_throttle_step(c));
  EXPECT_EQ(c, (gpu::GpuConfig{0, 1}));
}

TEST_F(GpuModelsFixture, ExplicitLawApproximatesNmpc) {
  NmpcConfig cfg;
  ExplicitNmpcGpuController enmpc(plat_, *models_, cfg, 1200);
  NmpcGpuController nmpc(plat_, *models_, cfg);
  enmpc.begin_run({9, 4});
  nmpc.begin_run({9, 4});
  // Drive both with the same frames; compare resulting energies end-to-end.
  common::Rng rng(9);
  const auto trace = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("VendettaMark"), 600, rng);
  gpu::GpuPlatform p1({}, 1), p2({}, 1);
  GpuRunner r1(p1, 30.0), r2(p2, 30.0);
  const auto res_n = r1.run(trace, nmpc, {9, 4});
  const auto res_e = r2.run(trace, enmpc, {9, 4});
  EXPECT_NEAR(res_e.gpu_energy_j, res_n.gpu_energy_j, 0.15 * res_n.gpu_energy_j);
  // The explicit law must be far cheaper per slow decision.
  EXPECT_LT(res_e.decision_evals, res_n.decision_evals / 2);
}

TEST(GpuController, BaselineKeepsAllSlices) {
  gpu::GpuPlatform plat;
  BaselineGpuGovernor gov(plat);
  gpu::FrameResult r;
  r.gpu_busy_frac = 0.5;
  r.deadline_met = true;
  const auto next = gov.step(r, {5, 2}, 0);
  EXPECT_EQ(next.num_slices, plat.params().max_slices);
}

TEST(GpuController, BaselineRampsOnMiss) {
  gpu::GpuPlatform plat;
  BaselineGpuGovernor gov(plat);
  gpu::FrameResult r;
  r.gpu_busy_frac = 1.0;
  r.deadline_met = false;
  const auto next = gov.step(r, {5, 4}, 0);
  EXPECT_GT(next.freq_idx, 5);
}

TEST(GpuController, BaselineDecaysWhenIdle) {
  gpu::GpuPlatform plat;
  BaselineGpuGovernor gov(plat);
  gpu::FrameResult r;
  r.gpu_busy_frac = 0.2;
  r.deadline_met = true;
  const auto next = gov.step(r, {10, 4}, 0);
  EXPECT_LT(next.freq_idx, 10);
}

TEST(GpuRunner, AccountsEnergyAndMisses) {
  gpu::GpuPlatform plat;
  GpuRunner runner(plat, 30.0);
  common::Rng rng(11);
  const auto trace = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("SharkDash"), 200, rng);
  MaxGpuGovernor gov(plat);
  const auto res = runner.run(trace, gov, {17, 4});
  EXPECT_EQ(res.frames, 200u);
  EXPECT_GT(res.gpu_energy_j, 0.0);
  EXPECT_GT(res.pkg_energy_j, res.gpu_energy_j);
  EXPECT_GT(res.pkg_dram_energy_j, res.pkg_energy_j);
  EXPECT_EQ(res.deadline_misses, 0u);  // max config renders SharkDash easily
  EXPECT_EQ(res.frame_times_s.size(), 200u);
}

TEST(GpuRunner, TransitionCostsCharged) {
  gpu::GpuPlatform plat;
  GpuRunner runner(plat, 30.0);
  common::Rng rng(12);
  const auto trace = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 100, rng);

  // A controller that flips slice count each frame racks up transition cost.
  class Flipper : public GpuController {
   public:
    std::string name() const override { return "flipper"; }
    gpu::GpuConfig step(const gpu::FrameResult&, const gpu::GpuConfig& cur,
                        std::size_t) override {
      return gpu::GpuConfig{cur.freq_idx, cur.num_slices == 1 ? 2 : 1};
    }
  } flipper;
  const auto res = runner.run(trace, flipper, {10, 1});
  EXPECT_EQ(res.slice_changes, 100u);
  EXPECT_GT(res.transition_energy_j, 0.05);
}

TEST(GpuRunner, TelemetryChannelDoesNotPerturbBlindControllers) {
  // Binding a telemetry source must leave a thermally-blind controller's
  // records byte-identical: the default observe_telemetry is a no-op and the
  // source itself is side-effect free.
  common::Rng rng(21);
  const auto trace = workloads::GpuBenchmarks::trace(
      workloads::GpuBenchmarks::by_name("EpicCitadel"), 120, rng);
  const gpu::GpuConfig init{9, 4};

  const auto run_with = [&](bool bind_telemetry) {
    gpu::GpuPlatform plat({}, 5);
    GpuRunnerHooks hooks;
    if (bind_telemetry) {
      hooks.telemetry = [] {
        soc::ThermalTelemetry t;
        t.constrained = true;
        t.budget_w = 0.5;  // would bind hard if anything listened
        return t;
      };
    }
    GpuRunner runner(plat, 30.0, std::move(hooks));
    GpuOnlineModels models(plat);
    common::Rng boot(7);
    bootstrap_gpu_models(plat, models, kPeriod, 200, boot);
    NmpcConfig cfg;  // thermal_aware defaults to false: blind
    ExplicitNmpcGpuController enmpc(plat, models, cfg, 300);
    return runner.run(trace, enmpc, init);
  };
  const GpuRunResult without = run_with(false);
  const GpuRunResult with = run_with(true);
  ASSERT_EQ(without.configs.size(), with.configs.size());
  for (std::size_t i = 0; i < without.configs.size(); ++i)
    EXPECT_EQ(without.configs[i], with.configs[i]);
  EXPECT_EQ(without.gpu_energy_j, with.gpu_energy_j);
  EXPECT_EQ(without.pkg_dram_energy_j, with.pkg_dram_energy_j);
  EXPECT_EQ(without.deadline_misses, with.deadline_misses);
  EXPECT_EQ(without.decision_evals, with.decision_evals);
}

TEST(GpuWorkloadStateTest, ObserveTracksContent) {
  GpuWorkloadState w;
  gpu::FrameResult r;
  r.busy_cycles = 30e6;  // at eff=1
  r.mem_bytes = 20e6;
  for (int i = 0; i < 20; ++i) w.observe(r, 1.0);
  EXPECT_NEAR(w.work_cycles, 30e6, 1e5);
  EXPECT_NEAR(w.mem_bytes, 20e6, 1e5);
}

}  // namespace
}  // namespace oal::core
