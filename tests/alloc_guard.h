// Counting replacement of the global allocation functions, for asserting
// that a code path performs zero heap allocations.
//
// Including this header DEFINES the replaceable global operator new/delete
// family (non-inline, as [replacement.functions] requires), so it must be
// included by exactly ONE translation unit per binary — fine for this
// repo's one-TU-per-test and one-TU-per-bench layout.  Every allocation in
// the process then bumps an atomic counter; AllocationProbe snapshots it
// around a region:
//
//   oal::alloc_guard::AllocationProbe probe;
//   hot_path();
//   EXPECT_EQ(probe.delta(), 0u);
//
// The replacements forward to std::malloc/std::free, so sanitizer builds
// keep their malloc-level instrumentation (ASan still tracks every block;
// only the new/delete-mismatch check is bypassed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace oal::alloc_guard {

inline std::atomic<std::size_t> g_allocations{0};

inline std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Snapshot of the process-wide allocation counter at construction time.
class AllocationProbe {
 public:
  AllocationProbe() : start_(allocation_count()) {}
  /// Allocations since construction (deallocations are not counted).
  std::size_t delta() const { return allocation_count() - start_; }

 private:
  std::size_t start_;
};

inline void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; a successful operator new never does.
  return std::malloc(size ? size : 1);
}

}  // namespace oal::alloc_guard

// Kept strictly out-of-line: [replacement.functions] forbids inline
// replacements, and letting the compiler inline them at call sites makes GCC
// pair our operator new with the std::free it forwards to and raise a
// spurious -Wmismatched-new-delete.
#if defined(__GNUC__) || defined(__clang__)
#define OAL_ALLOC_GUARD_NOINLINE __attribute__((noinline))
#else
#define OAL_ALLOC_GUARD_NOINLINE
#endif

OAL_ALLOC_GUARD_NOINLINE void* operator new(std::size_t size) {
  if (void* p = oal::alloc_guard::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

OAL_ALLOC_GUARD_NOINLINE void* operator new[](std::size_t size) {
  if (void* p = oal::alloc_guard::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

OAL_ALLOC_GUARD_NOINLINE void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return oal::alloc_guard::counted_alloc(size);
}

OAL_ALLOC_GUARD_NOINLINE void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return oal::alloc_guard::counted_alloc(size);
}

OAL_ALLOC_GUARD_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
OAL_ALLOC_GUARD_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
OAL_ALLOC_GUARD_NOINLINE void operator delete(void* p, std::size_t) noexcept { std::free(p); }
OAL_ALLOC_GUARD_NOINLINE void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
OAL_ALLOC_GUARD_NOINLINE void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
OAL_ALLOC_GUARD_NOINLINE void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#undef OAL_ALLOC_GUARD_NOINLINE
