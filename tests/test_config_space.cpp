// Tests for the SoC configuration space (4940 configurations, neighborhoods).
#include <gtest/gtest.h>

#include <set>

#include "soc/config_space.h"

namespace oal::soc {
namespace {

TEST(ConfigSpace, SizeMatchesPaper) {
  ConfigSpace space;
  // 4 little-core counts x 5 big-core counts x 13 little freqs x 19 big freqs
  // = the 4940 configurations the paper quotes for the Exynos 5422.
  EXPECT_EQ(space.size(), 4940u);
  EXPECT_EQ(space.little_freqs().size(), 13u);
  EXPECT_EQ(space.big_freqs().size(), 19u);
  EXPECT_DOUBLE_EQ(space.little_freqs().front(), 200.0);
  EXPECT_DOUBLE_EQ(space.little_freqs().back(), 1400.0);
  EXPECT_DOUBLE_EQ(space.big_freqs().back(), 2000.0);
}

TEST(ConfigSpace, IndexBijection) {
  ConfigSpace space;
  for (std::size_t i = 0; i < space.size(); i += 7) {
    const SocConfig c = space.config_at(i);
    EXPECT_TRUE(space.valid(c));
    EXPECT_EQ(space.index_of(c), i);
  }
}

TEST(ConfigSpace, EnumerateIsExhaustiveAndUnique) {
  ConfigSpace space;
  const auto all = space.enumerate();
  EXPECT_EQ(all.size(), 4940u);
  std::set<std::size_t> seen;
  for (const auto& c : all) seen.insert(space.index_of(c));
  EXPECT_EQ(seen.size(), 4940u);
}

TEST(ConfigSpace, ValidityChecks) {
  ConfigSpace space;
  EXPECT_TRUE(space.valid({1, 0, 0, 0}));
  EXPECT_FALSE(space.valid({0, 0, 0, 0}));   // at least one little core
  EXPECT_FALSE(space.valid({5, 0, 0, 0}));
  EXPECT_FALSE(space.valid({1, 5, 0, 0}));
  EXPECT_FALSE(space.valid({1, 0, 13, 0}));
  EXPECT_FALSE(space.valid({1, 0, 0, 19}));
  EXPECT_FALSE(space.valid({1, 0, -1, 0}));
}

TEST(ConfigSpace, IndexOfInvalidThrows) {
  ConfigSpace space;
  EXPECT_THROW(space.index_of({0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(space.config_at(4940), std::out_of_range);
}

TEST(ConfigSpace, NeighborhoodRadiusOne) {
  ConfigSpace space;
  const SocConfig c{2, 2, 6, 9};
  const auto n = space.neighborhood(c, 1, 4);
  // Interior config: 3^4 = 81 candidates including itself.
  EXPECT_EQ(n.size(), 81u);
  for (const auto& x : n) {
    EXPECT_TRUE(space.valid(x));
    EXPECT_LE(std::abs(x.num_little - c.num_little), 1);
    EXPECT_LE(std::abs(x.num_big - c.num_big), 1);
    EXPECT_LE(std::abs(x.little_freq_idx - c.little_freq_idx), 1);
    EXPECT_LE(std::abs(x.big_freq_idx - c.big_freq_idx), 1);
  }
}

TEST(ConfigSpace, NeighborhoodClampedAtBoundary) {
  ConfigSpace space;
  const SocConfig corner{1, 0, 0, 0};
  const auto n = space.neighborhood(corner, 1, 4);
  // Each knob has only 2 feasible values at the corner: 2^4 = 16.
  EXPECT_EQ(n.size(), 16u);
}

TEST(ConfigSpace, NeighborhoodMaxChangedKnobs) {
  ConfigSpace space;
  const SocConfig c{2, 2, 6, 9};
  const auto n1 = space.neighborhood(c, 1, 1);
  // Itself + 2 moves per knob * 4 knobs = 9.
  EXPECT_EQ(n1.size(), 9u);
  const auto n2 = space.neighborhood(c, 1, 2);
  // 1 + 8 + C(4,2)*4 = 33.
  EXPECT_EQ(n2.size(), 33u);
}

TEST(ConfigSpace, ClusterSweepsCoverBothClustersAndExclusiveRoles) {
  ConfigSpace space;
  const SocConfig c{2, 2, 6, 9};
  const auto s = space.cluster_sweeps(c);
  EXPECT_EQ(s.size(), 2u * (4u * 13u) + 2u * (5u * 19u));
  bool saw_big_off_fast = false, saw_little_max = false, saw_little_only = false,
       saw_big_only = false;
  for (const auto& x : s) {
    EXPECT_TRUE(space.valid(x));
    // Each sweep either keeps the other cluster fixed or parks it in its
    // idle role (big gated / one idle-speed little).
    const bool little_swept = x.num_big == c.num_big && x.big_freq_idx == c.big_freq_idx;
    const bool big_swept = x.num_little == c.num_little && x.little_freq_idx == c.little_freq_idx;
    const bool little_only = x.num_big == 0 && x.big_freq_idx == 0;
    const bool big_only = x.num_little == 1 && x.little_freq_idx == 0;
    EXPECT_TRUE(little_swept || big_swept || little_only || big_only);
    saw_big_off_fast |= x.num_big == 0;
    saw_little_max |= x.num_little == 4 && x.little_freq_idx == 12;
    saw_little_only |= little_only && x.num_little == 3;
    saw_big_only |= big_only && x.num_big == 2;
  }
  EXPECT_TRUE(saw_big_off_fast);
  EXPECT_TRUE(saw_little_max);
  EXPECT_TRUE(saw_little_only);
  EXPECT_TRUE(saw_big_only);
}

TEST(ConfigSpace, KnobCardinalitiesMatchHeads) {
  ConfigSpace space;
  const auto k = space.knob_cardinalities();
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], 4u);
  EXPECT_EQ(k[1], 5u);
  EXPECT_EQ(k[2], 13u);
  EXPECT_EQ(k[3], 19u);
}

TEST(ConfigSpace, ToStringReadable) {
  const std::string s = ConfigSpace::to_string({2, 3, 0, 18});
  EXPECT_NE(s.find("L2@200MHz"), std::string::npos);
  EXPECT_NE(s.find("B3@2000MHz"), std::string::npos);
}

}  // namespace
}  // namespace oal::soc
