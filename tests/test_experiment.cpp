// Tests for the parallel experiment engine: parallel == serial determinism,
// id-ordered aggregation, empty batches, exception propagation, and the
// underlying thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/thread_pool.h"
#include "core/domain.h"
#include "core/experiment.h"
#include "core/governors.h"
#include "core/online_il.h"
#include "core/rl_controller.h"
#include "core/scenario_factories.h"
#include "core/scenario_registry.h"
#include "workloads/cpu_benchmarks.h"
#include "workloads/gpu_benchmarks.h"

namespace oal::core {
namespace {

Scenario governor_scenario(const std::string& id, const std::string& app, std::uint64_t seed) {
  Scenario s;
  s.id = id;
  common::Rng trace_rng(seed);
  s.trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name(app), 10, trace_rng);
  s.seed = seed;
  s.make_controller = [](ScenarioContext& ctx) {
    return ControllerInstance{std::make_unique<OndemandGovernor>(ctx.platform.space()), nullptr};
  };
  return s;
}

/// A batch of >= 8 scenarios mixing apps, seeds, and controllers — including
/// stateful Online-IL arms whose candidate search and exploration draw from
/// per-scenario Rng streams.
std::vector<Scenario> mixed_batch() {
  std::vector<Scenario> batch;
  const char* apps[] = {"SHA", "FFT", "Qsort", "Dijkstra", "Kmeans", "Spectral"};
  for (int i = 0; i < 6; ++i)
    batch.push_back(governor_scenario("gov/" + std::to_string(i), apps[i], 100 + i));
  for (int i = 0; i < 2; ++i) {
    Scenario s;
    s.id = "il/" + std::to_string(i);
    common::Rng trace_rng(200 + i);
    s.trace =
        workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("MotionEst"), 12,
                                        trace_rng);
    s.seed = 300 + i;
    s.make_controller = [i](ScenarioContext& ctx) {
      // Exercise the scenario-private stream: the controller's exploration
      // seed comes from ctx.rng, so determinism across pool sizes covers it.
      OnlineIlConfig cfg;
      cfg.seed = ctx.rng.next_u64();
      const std::vector<workloads::AppSpec> offline_apps{
          workloads::CpuBenchmarks::by_name("SHA"), workloads::CpuBenchmarks::by_name("FFT")};
      return online_il_collect_factory(offline_apps, /*snippets_per_app=*/6,
                                       /*configs_per_snippet=*/3, /*collect_seed=*/7,
                                       /*train_seed=*/5 + i, cfg)(ctx);
    };
    batch.push_back(std::move(s));
  }
  return batch;
}

/// A small GPU-ENMPC scenario: models bootstrap + explicit-law fit run in
/// the factory, drawing the law seed from the scenario-private stream so
/// determinism across pool sizes covers the GPU domain's Rng plumbing too.
/// `thermal_aware` switches the controller to the budget-constrained variant
/// (which also adds the budget dimension to the sampled explicit law).
GpuScenario gpu_enmpc_scenario(const std::string& id, std::uint64_t seed,
                               bool thermal_aware = false) {
  GpuScenario s;
  s.id = id;
  s.seed = seed;
  common::Rng trng(seed);
  s.trace = workloads::GpuBenchmarks::trace(workloads::GpuBenchmarks::by_name("EpicCitadel"), 150,
                                            trng);
  s.initial = gpu::GpuConfig{9, s.platform.max_slices};
  s.make_controller = [thermal_aware](GpuScenarioContext& ctx) {
    NmpcConfig cfg;
    cfg.fps_target = ctx.scenario.fps_target;
    cfg.thermal_aware = thermal_aware;
    return gpu_enmpc_factory(cfg, /*law_samples=*/150, /*bootstrap_frames=*/80,
                             /*bootstrap_seed=*/7, /*law_seed=*/ctx.rng.next_u64())(ctx);
  };
  return s;
}

/// Preheated transient-budget constraints: the budget is recomputed every
/// frame from a transient_power_headroom horizon while the device cools.
soc::ThermalGpuConstraintParams preheated_transient_gpu_params() {
  soc::ThermalGpuConstraintParams p;
  p.ambient_c = 35.0;
  p.limits.t_max_skin_c = 40.0;
  p.limits.t_max_junction_c = 75.0;
  p.horizon_s = 240.0;
  p.budget_interval_s = 1.0 / 30.0;
  p.initial_temperature_c = {48.0, 46.0, 58.0, 45.0, 39.5};
  return p;
}

/// Thermal constraints calibrated to bind: 40 C ambient + 3 K skin margin
/// puts the steady-state budget (~1.7 W) below the platform's top
/// configurations (~2.9 W).
soc::ThermalConstraintParams binding_thermal_params() {
  soc::ThermalConstraintParams p;
  p.limits.t_max_junction_c = 55.0;
  p.limits.t_max_skin_c = 43.0;
  p.ambient_c = 40.0;
  p.horizon_s = 0.0;  // steady-state max_sustainable_power budget
  return p;
}

/// A DRM scenario whose controller pins the maximum configuration — under a
/// binding budget every decision must be clamped.
Scenario performance_scenario(const std::string& id, const std::string& app, std::uint64_t seed) {
  Scenario s = governor_scenario(id, app, seed);
  s.make_controller = [](ScenarioContext& ctx) {
    return ControllerInstance{std::make_unique<PerformanceGovernor>(ctx.platform.space()),
                              nullptr};
  };
  return s;
}

TEST(ThreadPool, RunsAllIndexedTasks) {
  common::ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.run_indexed(100, [&](std::size_t i) { hits[i] = static_cast<int>(i) + 1; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i], i + 1);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  common::ThreadPool pool(3);
  std::vector<int> items;
  for (int i = 0; i < 64; ++i) items.push_back(i);
  const auto out = pool.parallel_map(items, [](int v, std::size_t) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  common::ThreadPool pool(4);
  try {
    pool.run_indexed(32, [](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");  // lowest failing index, deterministically
  }
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  common::ThreadPool pool(2);
  pool.run_indexed(0, [](std::size_t) { FAIL(); });
}

TEST(Experiment, EmptyBatchYieldsEmptyResults) {
  ExperimentEngine engine(ExperimentOptions{2});
  EXPECT_TRUE(engine.run_batch({}).empty());
}

TEST(Experiment, ParallelMatchesSerialBitwise) {
  const auto batch = mixed_batch();
  ASSERT_GE(batch.size(), 8u);

  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  const auto rs = serial.run_batch(batch);
  const auto rp = parallel.run_batch(batch);

  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, rp[i].id);
    // Bitwise-identical aggregates: the doubles must match exactly, not
    // within a tolerance — scenarios own every byte of mutable state.
    EXPECT_EQ(rs[i].run.energy_ratio(), rp[i].run.energy_ratio());
    EXPECT_EQ(rs[i].run.total_energy_j(), rp[i].run.total_energy_j());
    EXPECT_EQ(rs[i].run.total_time_s(), rp[i].run.total_time_s());
    ASSERT_EQ(rs[i].run.records.size(), rp[i].run.records.size());
    for (std::size_t k = 0; k < rs[i].run.records.size(); ++k) {
      EXPECT_EQ(rs[i].run.records[k].energy_j, rp[i].run.records[k].energy_j);
      EXPECT_EQ(rs[i].run.records[k].applied, rp[i].run.records[k].applied);
      EXPECT_EQ(rs[i].run.records[k].oracle, rp[i].run.records[k].oracle);
    }
  }
}

TEST(Experiment, RepeatedParallelRunsAreIdentical) {
  const auto batch = mixed_batch();
  ExperimentEngine engine(ExperimentOptions{4});
  const auto r1 = engine.run_batch(batch);
  const auto r2 = engine.run_batch(batch);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_EQ(r1[i].run.energy_ratio(), r2[i].run.energy_ratio());
}

TEST(Experiment, ResultsOrderedByScenarioId) {
  std::vector<Scenario> batch;
  batch.push_back(governor_scenario("z", "SHA", 1));
  batch.push_back(governor_scenario("a", "FFT", 2));
  batch.push_back(governor_scenario("m", "Qsort", 3));
  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_batch(batch);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].id, "a");
  EXPECT_EQ(res[1].id, "m");
  EXPECT_EQ(res[2].id, "z");
}

TEST(Experiment, ThrowingFactoryPropagates) {
  auto batch = mixed_batch();
  Scenario bad = governor_scenario("bad", "SHA", 9);
  bad.make_controller = [](ScenarioContext&) -> ControllerInstance {
    throw std::runtime_error("factory exploded");
  };
  batch.insert(batch.begin() + 2, std::move(bad));
  ExperimentEngine engine(ExperimentOptions{4});
  EXPECT_THROW(engine.run_batch(batch), std::runtime_error);
}

TEST(Experiment, NullFactoryAndBadIdsAreRejected) {
  ExperimentEngine engine(ExperimentOptions{2});
  {
    Scenario s = governor_scenario("s", "SHA", 1);
    s.make_controller = nullptr;
    EXPECT_THROW(engine.run_batch({s}), std::invalid_argument);
  }
  {
    Scenario s = governor_scenario("", "SHA", 1);
    EXPECT_THROW(engine.run_batch({s}), std::invalid_argument);
  }
  {
    EXPECT_THROW(
        engine.run_batch({governor_scenario("dup", "SHA", 1), governor_scenario("dup", "FFT", 2)}),
        std::invalid_argument);
  }
}

TEST(Experiment, WarmupRunsBeforeRecordedTrace) {
  // A counting controller sees warmup + trace steps but the result only
  // records the trace.
  struct CountingController : DrmController {
    std::shared_ptr<std::atomic<int>> steps;
    explicit CountingController(std::shared_ptr<std::atomic<int>> s) : steps(std::move(s)) {}
    std::string name() const override { return "counting"; }
    soc::SocConfig step(const soc::SnippetResult&, const soc::SocConfig& executed) override {
      ++*steps;
      return executed;
    }
  };
  auto steps = std::make_shared<std::atomic<int>>(0);
  Scenario s = governor_scenario("warm", "SHA", 4);
  common::Rng warm_rng(77);
  s.warmup =
      workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("FFT"), 5, warm_rng);
  s.make_controller = [steps](ScenarioContext&) {
    return ControllerInstance{std::make_unique<CountingController>(steps), nullptr};
  };
  ExperimentEngine engine(ExperimentOptions{1});
  const auto res = engine.run_batch({s});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].run.records.size(), 10u);
  EXPECT_EQ(steps->load(), 15);  // 5 warmup + 10 recorded
}

TEST(Experiment, OnCompleteSeesLiveController) {
  Scenario s = governor_scenario("hook", "SHA", 4);
  auto name = std::make_shared<std::string>();
  s.on_complete = [name](DrmController& ctl, const RunResult& run) {
    *name = ctl.name();
    EXPECT_EQ(run.records.size(), 10u);
  };
  ExperimentEngine engine(ExperimentOptions{2});
  (void)engine.run_batch({s});
  EXPECT_EQ(*name, "ondemand");
}

TEST(Experiment, MapIsDeterministicAcrossPoolSizes) {
  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 32; ++i) seeds.push_back(i);
  const auto draw = [](std::uint64_t seed, std::size_t) {
    common::Rng rng(seed);
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += rng.uniform();
    return acc;
  };
  EXPECT_EQ(serial.map(seeds, draw), parallel.map(seeds, draw));
}

TEST(Experiment, MixedDomainParallelMatchesSerialBitwise) {
  // DRM + GPU-ENMPC + thermally-constrained DRM in one batch: the
  // cross-domain engine must give bitwise-identical results regardless of
  // pool size (every scenario owns its platform and Rng stream).
  std::vector<AnyScenario> batch;
  batch.emplace_back(governor_scenario("mixed/drm/0", "SHA", 31));
  batch.emplace_back(governor_scenario("mixed/drm/1", "Kmeans", 32));
  batch.emplace_back(gpu_enmpc_scenario("mixed/gpu/0", 41));
  batch.emplace_back(gpu_enmpc_scenario("mixed/gpu/1", 42));
  batch.emplace_back(
      ThermalDrmScenario{performance_scenario("mixed/thermal/0", "Kmeans", 51),
                         binding_thermal_params()});
  batch.emplace_back(ThermalDrmScenario{governor_scenario("mixed/thermal/1", "FFT", 52),
                                        binding_thermal_params()});

  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  const auto rs = serial.run_any(batch);
  const auto rp = parallel.run_any(batch);

  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id(), rp[i].id());
    ASSERT_EQ(rs[i].metrics().size(), rp[i].metrics().size());
    for (std::size_t k = 0; k < rs[i].metrics().size(); ++k) {
      EXPECT_EQ(rs[i].metrics()[k].first, rp[i].metrics()[k].first);
      // Bitwise: doubles must match exactly, not within a tolerance.
      EXPECT_EQ(rs[i].metrics()[k].second, rp[i].metrics()[k].second)
          << rs[i].id() << " metric " << rs[i].metrics()[k].first;
    }
  }

  // Domain payloads round-trip: per-record / per-frame state, not just
  // aggregates.
  const auto& gpu_s = rs[2].as<GpuRunResult>();
  const auto& gpu_p = rp[2].as<GpuRunResult>();
  ASSERT_EQ(gpu_s.configs.size(), gpu_p.configs.size());
  for (std::size_t k = 0; k < gpu_s.configs.size(); ++k) {
    EXPECT_EQ(gpu_s.configs[k], gpu_p.configs[k]);
    EXPECT_EQ(gpu_s.frame_times_s[k], gpu_p.frame_times_s[k]);
  }
  const auto& th_s = rs[4].as<ThermalRunResult>();
  const auto& th_p = rp[4].as<ThermalRunResult>();
  EXPECT_EQ(th_s.clamped_snippets, th_p.clamped_snippets);
  ASSERT_EQ(th_s.run.records.size(), th_p.run.records.size());
  for (std::size_t k = 0; k < th_s.run.records.size(); ++k) {
    EXPECT_EQ(th_s.run.records[k].applied, th_p.run.records[k].applied);
    EXPECT_EQ(th_s.run.records[k].energy_j, th_p.run.records[k].energy_j);
  }
}

TEST(Experiment, BindingThermalBudgetChangesAppliedConfigs) {
  // The same scenario with and without the thermal adapter: a binding
  // budget must clamp decisions and change what actually executes.
  const Scenario free = performance_scenario("thermal", "Kmeans", 9);
  const ThermalDrmScenario constrained{free, binding_thermal_params()};

  ExperimentEngine engine(ExperimentOptions{2});
  const auto results = engine.run_any({AnyScenario(free), [&] {
                                         ThermalDrmScenario c = constrained;
                                         c.base.id = "thermal-budget";
                                         return AnyScenario(std::move(c));
                                       }()});
  ASSERT_EQ(results.size(), 2u);
  const RunResult& unconstrained = results[0].as<RunResult>();
  const ThermalRunResult& budgeted = results[1].as<ThermalRunResult>();

  EXPECT_GT(budgeted.clamped_snippets, 0u);
  EXPECT_EQ(budgeted.clamped_snippets, budgeted.run.records.size());  // pinned-max controller
  ASSERT_EQ(unconstrained.records.size(), budgeted.run.records.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < unconstrained.records.size(); ++i) {
    if (!(unconstrained.records[i].applied == budgeted.run.records[i].applied)) ++differing;
  }
  EXPECT_GT(differing, 0u);
  EXPECT_GT(budgeted.final_budget_w, 0.0);
  // The clamped run draws less power than the pinned-max run.
  EXPECT_LT(budgeted.run.total_energy_j() / budgeted.run.total_time_s(),
            unconstrained.total_energy_j() / unconstrained.total_time_s());
}

TEST(Experiment, RunAnyRejectsBadBatches) {
  ExperimentEngine engine(ExperimentOptions{2});
  {
    // Empty id.
    EXPECT_THROW(engine.run_any({governor_scenario("", "SHA", 1)}), std::invalid_argument);
  }
  {
    // Duplicate ids across domains.
    std::vector<AnyScenario> batch;
    batch.emplace_back(governor_scenario("dup", "SHA", 1));
    batch.emplace_back(gpu_enmpc_scenario("dup", 2));
    EXPECT_THROW(engine.run_any(batch), std::invalid_argument);
  }
  {
    // Default-constructed scenario is not runnable.
    EXPECT_THROW(engine.run_any({AnyScenario()}), std::invalid_argument);
  }
}

TEST(Experiment, CustomClosureScenarioRunsOnEngine) {
  AnyScenario custom("custom/sum", [] {
    double acc = 0.0;
    common::Rng rng(7);
    for (int i = 0; i < 100; ++i) acc += rng.uniform();
    return AnyResult("custom/sum", acc, Metrics{{"sum", acc}});
  });
  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_any({custom});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].holds<double>());
  EXPECT_EQ(res[0].as<double>(), res[0].metric("sum"));
  EXPECT_FALSE(res[0].has_metric("missing"));
  EXPECT_THROW(res[0].metric("missing"), std::invalid_argument);
  EXPECT_THROW(res[0].as<int>(), std::logic_error);
}

// ---- Streaming result path --------------------------------------------------

/// Cheap custom-closure scenario for streaming-shape tests: a deterministic
/// pseudo-metric from the id hash, no platform or Oracle behind it.
AnyScenario cheap_scenario(const std::string& id) {
  return AnyScenario(id, [id] {
    common::Rng rng(std::hash<std::string>{}(id));
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) acc += rng.uniform();
    return AnyResult(id, acc, Metrics{{"acc", acc}});
  });
}

TEST(Experiment, VectorApisAreThinWrappersOverTheSink) {
  // The vector-returning run_any/run_batch are sink wrappers; collecting
  // through the sink by hand must reproduce them bitwise, ids in order.
  const auto any_batch = [] {
    std::vector<AnyScenario> b;
    b.emplace_back(governor_scenario("w/2", "SHA", 1));
    b.emplace_back(governor_scenario("w/0", "FFT", 2));
    b.emplace_back(cheap_scenario("w/1"));
    return b;
  }();
  ExperimentEngine engine(ExperimentOptions{4});
  const std::vector<AnyResult> vec = engine.run_any(any_batch);
  std::vector<AnyResult> sunk;
  engine.run_any(any_batch, [&](AnyResult&& r) { sunk.push_back(std::move(r)); });
  ASSERT_EQ(sunk.size(), vec.size());
  for (std::size_t i = 0; i < vec.size(); ++i) {
    EXPECT_EQ(sunk[i].id(), vec[i].id());
    ASSERT_EQ(sunk[i].metrics().size(), vec[i].metrics().size());
    for (std::size_t k = 0; k < vec[i].metrics().size(); ++k)
      EXPECT_EQ(sunk[i].metrics()[k].second, vec[i].metrics()[k].second);
  }

  const std::vector<Scenario> drm_batch{governor_scenario("d/1", "SHA", 3),
                                        governor_scenario("d/0", "Qsort", 4)};
  const auto drm_vec = engine.run_batch(drm_batch);
  std::vector<ScenarioResult> drm_sunk;
  engine.run_batch(drm_batch, [&](ScenarioResult&& r) { drm_sunk.push_back(std::move(r)); });
  ASSERT_EQ(drm_sunk.size(), drm_vec.size());
  for (std::size_t i = 0; i < drm_vec.size(); ++i) {
    EXPECT_EQ(drm_sunk[i].id, drm_vec[i].id);
    EXPECT_EQ(drm_sunk[i].run.total_energy_j(), drm_vec[i].run.total_energy_j());
  }
}

TEST(Experiment, StreamingDeliversShardsInIdOrderAcrossThreads) {
  // Ids arrive scrambled within each shard; the sink must see every shard
  // id-sorted, on the calling thread, identically for 1 and N workers.
  const std::vector<std::string> ids{"s/07", "s/02", "s/11", "s/00", "s/05", "s/09",
                                     "s/01", "s/10", "s/03", "s/08", "s/04", "s/06"};
  const std::size_t shard = 5;  // shards of 5, 5, 2
  const auto delivered_with = [&](std::size_t threads) {
    ExperimentEngine engine(ExperimentOptions{threads});
    std::size_t cursor = 0;
    std::vector<std::string> delivered;
    const std::size_t ran = engine.run_any_streaming(
        [&]() -> std::optional<AnyScenario> {
          if (cursor >= ids.size()) return std::nullopt;
          return cheap_scenario(ids[cursor++]);
        },
        [&](AnyResult&& r) { delivered.push_back(r.id()); }, StreamOptions{shard});
    EXPECT_EQ(ran, ids.size());
    return delivered;
  };
  const auto serial = delivered_with(1);
  ASSERT_EQ(serial.size(), ids.size());
  for (std::size_t base = 0; base < ids.size(); base += shard) {
    const std::size_t end = std::min(base + shard, ids.size());
    // Within a shard: sorted.  Across shards: generator order (no barrier on
    // the whole population, so no global sort).
    for (std::size_t i = base + 1; i < end; ++i) EXPECT_LT(serial[i - 1], serial[i]);
  }
  EXPECT_EQ(delivered_with(4), serial);
}

TEST(Experiment, StreamingMatchesVectorRunAnyBitwise) {
  // Same scenarios through the sharded generator path and the one-shot
  // vector path: per-scenario results must agree bitwise (sharding regroups
  // delivery, it never changes what a scenario computes).
  std::vector<AnyScenario> batch;
  for (int i = 0; i < 7; ++i)
    batch.emplace_back(governor_scenario("b/" + std::to_string(i), "SHA", 40 + i));
  ExperimentEngine engine(ExperimentOptions{4});
  const auto vec = engine.run_any(batch);

  std::map<std::string, double> streamed;
  std::size_t cursor = 0;
  engine.run_any_streaming(
      [&]() -> std::optional<AnyScenario> {
        if (cursor >= batch.size()) return std::nullopt;
        return batch[cursor++];
      },
      [&](AnyResult&& r) { streamed[r.id()] = r.metric("total_energy_j"); },
      StreamOptions{3});
  ASSERT_EQ(streamed.size(), vec.size());
  for (const AnyResult& r : vec) EXPECT_EQ(streamed.at(r.id()), r.metric("total_energy_j"));
}

TEST(Experiment, StreamingSinkExceptionPropagatesAndStops) {
  ExperimentEngine engine(ExperimentOptions{2});
  std::size_t cursor = 0;
  std::size_t delivered = 0;
  EXPECT_THROW(engine.run_any_streaming(
                   [&]() -> std::optional<AnyScenario> {
                     return cheap_scenario("x/" + std::to_string(cursor++));
                   },
                   [&](AnyResult&&) {
                     if (++delivered == 4) throw std::runtime_error("sink full");
                   },
                   StreamOptions{2}),
               std::runtime_error);
  EXPECT_EQ(delivered, 4u);   // nothing delivered past the throw
  EXPECT_LE(cursor, 4u + 2u);  // the infinite generator stopped with the shard

  // A throwing scenario: the lowest-index exception of the failing shard
  // propagates after the shard drains, exactly as in run_any.
  std::size_t i = 0;
  EXPECT_THROW(engine.run_any_streaming(
                   [&]() -> std::optional<AnyScenario> {
                     if (i >= 6) return std::nullopt;
                     const std::string id = "t/" + std::to_string(i++);
                     if (id == "t/4")
                       return AnyScenario(id, []() -> AnyResult {
                         throw std::runtime_error("scenario exploded");
                       });
                     return cheap_scenario(id);
                   },
                   [](AnyResult&&) {}, StreamOptions{3}),
               std::runtime_error);
}

TEST(Experiment, StreamingRejectsBadInputs) {
  ExperimentEngine engine(ExperimentOptions{2});
  const auto none = []() -> std::optional<AnyScenario> { return std::nullopt; };
  const auto drop = [](AnyResult&&) {};
  EXPECT_THROW(engine.run_any_streaming(nullptr, drop), std::invalid_argument);
  EXPECT_THROW(engine.run_any_streaming(none, nullptr), std::invalid_argument);
  EXPECT_THROW(engine.run_any_streaming(none, drop, StreamOptions{0}), std::invalid_argument);
  EXPECT_EQ(engine.run_any_streaming(none, drop), 0u);  // empty stream is fine

  // Duplicate ids are caught across shard boundaries, not just within one.
  std::size_t n = 0;
  EXPECT_THROW(engine.run_any_streaming(
                   [&]() -> std::optional<AnyScenario> {
                     if (n >= 5) return std::nullopt;
                     ++n;
                     return cheap_scenario(n == 5 ? "dup/0" : "dup/" + std::to_string(n - 1));
                   },
                   drop, StreamOptions{2}),
               std::invalid_argument);
}

TEST(Experiment, StreamingHoldsAtMostOneShardOfResults) {
  // 5000-scenario memory-bound smoke: each result payload carries a live
  // token, and the high-water of simultaneously-alive tokens must stay
  // bounded by one shard — the engine never accumulates the population.
  struct Live {
    static std::atomic<int>& count() {
      static std::atomic<int> n{0};
      return n;
    }
    static std::atomic<int>& high() {
      static std::atomic<int> h{0};
      return h;
    }
    static void enter() {
      const int now = ++count();
      int peak = high().load();
      while (now > peak && !high().compare_exchange_weak(peak, now)) {
      }
    }
    Live() { enter(); }
    Live(const Live&) { enter(); }
    Live(Live&&) { enter(); }
    Live& operator=(const Live&) = default;
    Live& operator=(Live&&) = default;
    ~Live() { --count(); }
  };
  Live::count() = 0;
  Live::high() = 0;

  constexpr std::size_t kDevices = 5000;
  constexpr std::size_t kShard = 64;
  ExperimentEngine engine(ExperimentOptions{4});
  std::size_t cursor = 0;
  double sum = 0.0;
  std::size_t delivered = 0;
  const std::size_t ran = engine.run_any_streaming(
      [&]() -> std::optional<AnyScenario> {
        if (cursor >= kDevices) return std::nullopt;
        const std::size_t i = cursor++;
        const std::string id = "mem/" + std::to_string(i);
        return AnyScenario(id, [id, i] {
          return AnyResult(id, Live{}, Metrics{{"v", static_cast<double>(i)}});
        });
      },
      [&](AnyResult&& r) {
        ++delivered;
        sum += r.metric("v");
      },
      StreamOptions{kShard});

  EXPECT_EQ(ran, kDevices);
  EXPECT_EQ(delivered, kDevices);
  EXPECT_EQ(sum, static_cast<double>(kDevices) * (kDevices - 1) / 2.0);
  EXPECT_EQ(Live::count().load(), 0);  // every result was destroyed
  // One shard in flight (+ small slack for the move into the sink); far
  // below the population.
  EXPECT_LE(Live::high().load(), static_cast<int>(kShard) + 2);
}

TEST(Experiment, ThermalAwareMixedDomainParallelMatchesSerialBitwise) {
  // Thermal-aware arms add two new determinism surfaces: the telemetry
  // channel feeding controller state, and the ThermalGpuScenario's
  // GpuRunner hooks.  Both must stay bitwise identical across pool sizes.
  std::vector<AnyScenario> batch;
  for (int i = 0; i < 2; ++i) {
    Scenario s;
    s.id = "aware/il/" + std::to_string(i);
    common::Rng trace_rng(600 + i);
    s.trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("Kmeans"), 12,
                                              trace_rng);
    s.make_controller = [i](ScenarioContext& ctx) {
      OnlineIlConfig cfg;
      cfg.thermal_aware = true;
      const std::vector<workloads::AppSpec> offline_apps{
          workloads::CpuBenchmarks::by_name("SHA"), workloads::CpuBenchmarks::by_name("FFT")};
      return online_il_collect_factory(offline_apps, /*snippets_per_app=*/6,
                                       /*configs_per_snippet=*/3, /*collect_seed=*/7,
                                       /*train_seed=*/5 + i, cfg)(ctx);
    };
    batch.emplace_back(ThermalDrmScenario{std::move(s), binding_thermal_params()});
  }
  {
    // Thermal-aware tabular Q: the headroom bucket folded into the
    // discretized RL state must be deterministic across pool sizes too.
    Scenario s;
    s.id = "aware/qlearn/0";
    common::Rng trace_rng(650);
    s.trace = workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name("MotionEst"), 12,
                                              trace_rng);
    s.make_controller = [](ScenarioContext& ctx) {
      return ControllerInstance{
          std::make_unique<QLearningController>(ctx.platform.space(), ml::QLearnConfig{},
                                                RlRewardScale{}, /*thermal_aware=*/true),
          nullptr};
    };
    batch.emplace_back(ThermalDrmScenario{std::move(s), binding_thermal_params()});
  }
  for (int i = 0; i < 2; ++i) {
    GpuScenario g = gpu_enmpc_scenario("aware/gpu/" + std::to_string(i), 70 + i);
    soc::ThermalGpuConstraintParams thermal;
    thermal.ambient_c = 35.0;
    thermal.limits.t_max_skin_c = 39.0;
    thermal.limits.t_max_junction_c = 75.0;
    thermal.horizon_s = 0.0;
    batch.emplace_back(ThermalGpuScenario{std::move(g), thermal});
  }

  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  const auto rs = serial.run_any(batch);
  const auto rp = parallel.run_any(batch);
  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id(), rp[i].id());
    ASSERT_EQ(rs[i].metrics().size(), rp[i].metrics().size());
    for (std::size_t k = 0; k < rs[i].metrics().size(); ++k) {
      EXPECT_EQ(rs[i].metrics()[k].first, rp[i].metrics()[k].first);
      EXPECT_EQ(rs[i].metrics()[k].second, rp[i].metrics()[k].second)
          << rs[i].id() << " metric " << rs[i].metrics()[k].first;
    }
  }
  // GPU thermal payloads round-trip per frame (results are id-sorted, so the
  // "aware/gpu/..." scenarios come first).
  ASSERT_EQ(rs[0].id(), "aware/gpu/0");
  const auto& gpu_s = rs[0].as<ThermalGpuRunResult>();
  const auto& gpu_p = rp[0].as<ThermalGpuRunResult>();
  EXPECT_EQ(gpu_s.clamped_frames, gpu_p.clamped_frames);
  ASSERT_EQ(gpu_s.run.configs.size(), gpu_p.run.configs.size());
  for (std::size_t k = 0; k < gpu_s.run.configs.size(); ++k)
    EXPECT_EQ(gpu_s.run.configs[k], gpu_p.run.configs[k]);
}

TEST(Experiment, PreheatedTransientGpuParallelMatchesSerialBitwise) {
  // The transient-budget arms add moving-budget telemetry (recomputed every
  // frame) feeding the budget-constrained NMPC — a new determinism surface
  // that must stay bitwise identical across pool sizes.
  std::vector<AnyScenario> batch;
  batch.emplace_back(ThermalGpuScenario{gpu_enmpc_scenario("transient/blind", 90, false),
                                        preheated_transient_gpu_params()});
  batch.emplace_back(ThermalGpuScenario{gpu_enmpc_scenario("transient/aware", 90, true),
                                        preheated_transient_gpu_params()});

  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  const auto rs = serial.run_any(batch);
  const auto rp = parallel.run_any(batch);
  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id(), rp[i].id());
    ASSERT_EQ(rs[i].metrics().size(), rp[i].metrics().size());
    for (std::size_t k = 0; k < rs[i].metrics().size(); ++k)
      EXPECT_EQ(rs[i].metrics()[k].second, rp[i].metrics()[k].second)
          << rs[i].id() << " metric " << rs[i].metrics()[k].first;
    const auto& s = rs[i].as<ThermalGpuRunResult>();
    const auto& p = rp[i].as<ThermalGpuRunResult>();
    EXPECT_EQ(s.clamped_frames, p.clamped_frames);
    ASSERT_EQ(s.run.configs.size(), p.run.configs.size());
    for (std::size_t k = 0; k < s.run.configs.size(); ++k)
      EXPECT_EQ(s.run.configs[k], p.run.configs[k]);
  }
}

TEST(Experiment, BudgetConstrainedNmpcAvoidsArbiterCorrections) {
  // Under a binding-but-feasible budget the aware controller's proposals
  // must pass the arbiter untouched (no corrections), while the blind twin
  // is clamped; an infeasible budget must land both on the throttle floor
  // with the run completing.
  soc::ThermalGpuConstraintParams binding;
  binding.ambient_c = 35.0;
  binding.limits.t_max_skin_c = 37.0;
  binding.limits.t_max_junction_c = 75.0;
  binding.horizon_s = 0.0;

  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_any(
      {ThermalGpuScenario{gpu_enmpc_scenario("budget/aware", 44, true), binding},
       ThermalGpuScenario{gpu_enmpc_scenario("budget/blind", 44, false), binding}});
  ASSERT_EQ(res.size(), 2u);
  const auto& aware = res[0].as<ThermalGpuRunResult>();
  const auto& blind = res[1].as<ThermalGpuRunResult>();
  ASSERT_EQ(res[0].id(), "budget/aware");
  EXPECT_GT(blind.clamped_frames, 0u);
  EXPECT_LT(aware.clamped_frames, blind.clamped_frames / 4);

  // Infeasible budget: skin limit essentially at ambient.
  soc::ThermalGpuConstraintParams brutal = binding;
  brutal.limits.t_max_skin_c = binding.ambient_c + 0.02;
  const auto floor_res = engine.run_any(
      {ThermalGpuScenario{gpu_enmpc_scenario("floor/aware", 44, true), brutal}});
  const auto& floor_run = floor_res[0].as<ThermalGpuRunResult>();
  EXPECT_EQ(floor_run.run.frames, 150u);  // the run completes
  std::size_t at_floor = 0;
  for (const gpu::GpuConfig& c : floor_run.run.configs)
    if (c == gpu::GpuConfig{0, 1}) ++at_floor;
  // Everything after the initial config's arbitration sits on the floor.
  EXPECT_GE(at_floor + 1, floor_run.run.configs.size());
}

TEST(Experiment, GpuTelemetryChannelDoesNotPerturbBlindControllers) {
  // A ThermalGpuScenario now binds a telemetry source; a thermally-blind
  // GPU controller must produce byte-identical records to the PR 4 wiring
  // (arbiter + observer only, no telemetry).
  const GpuScenario s = gpu_enmpc_scenario("gpu-blind-check", 71, false);
  soc::ThermalGpuConstraintParams params;
  params.ambient_c = 35.0;
  params.limits.t_max_skin_c = 39.0;
  params.limits.t_max_junction_c = 75.0;
  params.horizon_s = 0.0;

  ExperimentEngine engine(ExperimentOptions{1});
  const auto via_engine = engine.run_any({ThermalGpuScenario{s, params}});
  ASSERT_EQ(via_engine.size(), 1u);
  const GpuRunResult& with_telemetry = via_engine[0].as<ThermalGpuRunResult>().run;

  // Manual replication of the pre-telemetry wiring.
  gpu::GpuPlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  GpuScenarioContext ctx{s, platform, rng};
  GpuControllerInstance instance = s.make_controller(ctx);
  soc::ThermalGpuAdapter adapter(platform, 1.0 / s.fps_target, params);
  GpuRunnerHooks hooks;
  hooks.arbiter = [&adapter](const gpu::FrameDescriptor& f, const gpu::GpuConfig& proposed) {
    return adapter.arbitrate(f, proposed);
  };
  hooks.observer = [&adapter](const gpu::FrameDescriptor& f, const gpu::GpuConfig& applied,
                              const gpu::FrameResult& r) { adapter.observe(f, applied, r); };
  GpuRunner runner(platform, s.fps_target, std::move(hooks));
  const GpuRunResult without_telemetry = runner.run(s.trace, *instance.controller, s.initial);

  ASSERT_EQ(with_telemetry.configs.size(), without_telemetry.configs.size());
  for (std::size_t i = 0; i < with_telemetry.configs.size(); ++i)
    EXPECT_EQ(with_telemetry.configs[i], without_telemetry.configs[i]);
  EXPECT_EQ(with_telemetry.gpu_energy_j, without_telemetry.gpu_energy_j);
  EXPECT_EQ(with_telemetry.pkg_dram_energy_j, without_telemetry.pkg_dram_energy_j);
  EXPECT_EQ(with_telemetry.deadline_misses, without_telemetry.deadline_misses);
}

TEST(Experiment, ThermalGpuBindingBudgetClampsFrames) {
  GpuScenario g = gpu_enmpc_scenario("gpu-budget", 44);
  soc::ThermalGpuConstraintParams thermal;
  thermal.ambient_c = 35.0;
  thermal.limits.t_max_skin_c = 36.0;  // brutally tight: must clamp
  thermal.limits.t_max_junction_c = 60.0;
  thermal.horizon_s = 0.0;
  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_any({ThermalGpuScenario{std::move(g), thermal}});
  ASSERT_EQ(res.size(), 1u);
  const auto& run = res[0].as<ThermalGpuRunResult>();
  EXPECT_GT(run.clamped_frames, 0u);
  EXPECT_GT(run.final_budget_w, 0.0);
  EXPECT_EQ(res[0].metric("clamped_frames"), static_cast<double>(run.clamped_frames));
}

TEST(Experiment, TelemetryChannelDoesNotPerturbBlindControllers) {
  // A ThermalDrmScenario now binds a telemetry source; a thermally-blind
  // controller must produce byte-identical records to the PR 2 wiring
  // (arbiter + observer only, no telemetry).
  const Scenario s = governor_scenario("blind-check", "Kmeans", 77);
  const soc::ThermalConstraintParams params = binding_thermal_params();

  ExperimentEngine engine(ExperimentOptions{1});
  const auto via_engine = engine.run_any({ThermalDrmScenario{s, params}});
  ASSERT_EQ(via_engine.size(), 1u);
  const RunResult& with_telemetry = via_engine[0].as<ThermalRunResult>().run;

  // Manual replication of the pre-telemetry wiring.
  soc::BigLittlePlatform platform(s.platform, s.platform_noise_seed);
  common::Rng rng(s.seed);
  ScenarioContext ctx{s, platform, rng};
  ControllerInstance instance = s.make_controller(ctx);
  soc::ThermalSocAdapter adapter(platform, params);
  RunnerOptions opts;
  opts.objective = s.objective;
  opts.arbiter = [&adapter](const soc::SnippetDescriptor& snip, const soc::SocConfig& proposed) {
    return adapter.arbitrate(snip, proposed);
  };
  opts.observer = [&adapter](const soc::SnippetDescriptor& snip, const soc::SocConfig& applied,
                             const soc::SnippetResult& r) { adapter.observe(snip, applied, r); };
  DrmRunner runner(platform, opts);
  const RunResult without_telemetry = runner.run(s.trace, *instance.controller, s.initial);

  ASSERT_EQ(with_telemetry.records.size(), without_telemetry.records.size());
  for (std::size_t i = 0; i < with_telemetry.records.size(); ++i) {
    EXPECT_EQ(with_telemetry.records[i].applied, without_telemetry.records[i].applied);
    EXPECT_EQ(with_telemetry.records[i].energy_j, without_telemetry.records[i].energy_j);
    EXPECT_EQ(with_telemetry.records[i].exec_time_s, without_telemetry.records[i].exec_time_s);
  }
}

TEST(ScenarioRegistry, PrefixMatchesOnSegmentBoundaries) {
  // Regression: a raw string prefix "fig1" used to also select "fig10/...".
  ScenarioRegistry reg;
  reg.add("fig1", [] { return governor_scenario("", "SHA", 1); });
  reg.add("fig1/a", [] { return governor_scenario("", "FFT", 2); });
  reg.add("fig1/b", [] { return governor_scenario("", "Qsort", 3); });
  reg.add("fig10/a", [] { return governor_scenario("", "Kmeans", 4); });

  const auto names = reg.names("fig1");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "fig1");
  EXPECT_EQ(names[1], "fig1/a");
  EXPECT_EQ(names[2], "fig1/b");

  const auto batch = reg.build_batch("fig1");
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& s : batch) EXPECT_EQ(s.id.rfind("fig10/", 0), std::string::npos);

  // A trailing-slash prefix selects the family only (not the bare name).
  const auto slash_names = reg.names("fig1/");
  ASSERT_EQ(slash_names.size(), 2u);
  EXPECT_EQ(slash_names[0], "fig1/a");

  EXPECT_EQ(reg.names("fig10").size(), 1u);
  EXPECT_EQ(reg.names().size(), 4u);         // empty prefix: everything
  EXPECT_TRUE(reg.names("fig").empty());     // partial segment matches nothing
}

TEST(ScenarioRegistry, BuildsByPrefixInNameOrder) {
  ScenarioRegistry reg;
  reg.add("b/2", [] { return governor_scenario("", "SHA", 1); });
  reg.add("a/1", [] { return governor_scenario("", "FFT", 2); });
  reg.add("b/1", [] { return governor_scenario("", "Qsort", 3); });
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("a/1"));
  EXPECT_FALSE(reg.contains("c/1"));

  const auto all = reg.names();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a/1");

  const auto batch = reg.build_batch("b/");
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, "b/1");  // builder id overridden by registry name
  EXPECT_EQ(batch[1].id, "b/2");

  EXPECT_THROW(reg.build("missing"), std::invalid_argument);
  EXPECT_THROW(reg.add("a/1", [] { return Scenario{}; }), std::invalid_argument);
  EXPECT_THROW(reg.add("", [] { return Scenario{}; }), std::invalid_argument);
}

/// A small NoC traffic point for cross-domain registry batches.
NocScenario noc_scenario(std::uint64_t seed) {
  NocScenario s;
  s.traffic = noc::TrafficMatrix::uniform(64, 0.008);
  s.sim.seed = seed;
  return s;
}

/// A four-domain catalog: DRM governors, GPU-ENMPC, NoC points, and
/// thermally-constrained DRM, all behind AnyBuilder entries (plus one
/// DRM-typed Builder to prove the flavors mix).
ScenarioRegistry cross_domain_registry() {
  ScenarioRegistry reg;
  reg.add("drm/gov/0", [] { return governor_scenario("", "SHA", 31); });  // DRM-typed entry
  reg.add_any("drm/gov/1", [] { return AnyScenario(governor_scenario("", "Kmeans", 32)); });
  reg.add_any("gpu/enmpc/0", [] { return AnyScenario(gpu_enmpc_scenario("", 41)); });
  reg.add_any("noc/uniform/0", [] { return AnyScenario(noc_scenario(7)); });
  reg.add_any("noc/uniform/1", [] { return AnyScenario(noc_scenario(8)); });
  reg.add_any("thermal/perf", [] {
    return AnyScenario(ThermalDrmScenario{performance_scenario("", "Kmeans", 51),
                                          binding_thermal_params()});
  });
  return reg;
}

TEST(ScenarioRegistry, CrossDomainBatchParallelMatchesSerialBitwise) {
  // A registry-built mixed batch (DRM + GPU-ENMPC + NoC + thermal) must obey
  // the engine's bitwise-determinism contract like a hand-built one.
  const ScenarioRegistry reg = cross_domain_registry();
  const auto batch = reg.build_batch_any();
  ASSERT_EQ(batch.size(), 6u);

  ExperimentEngine serial(ExperimentOptions{1});
  ExperimentEngine parallel(ExperimentOptions{4});
  const auto rs = serial.run_any(batch);
  const auto rp = parallel.run_any(batch);
  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id(), rp[i].id());
    ASSERT_EQ(rs[i].metrics().size(), rp[i].metrics().size());
    for (std::size_t k = 0; k < rs[i].metrics().size(); ++k) {
      EXPECT_EQ(rs[i].metrics()[k].first, rp[i].metrics()[k].first);
      // Bitwise: doubles must match exactly, not within a tolerance.
      EXPECT_EQ(rs[i].metrics()[k].second, rp[i].metrics()[k].second)
          << rs[i].id() << " metric " << rs[i].metrics()[k].first;
    }
  }
  // Registry names became both scenario and result ids, in name order.
  EXPECT_EQ(rs[0].id(), "drm/gov/0");
  EXPECT_EQ(rs[2].id(), "gpu/enmpc/0");
  EXPECT_TRUE(rs[2].holds<GpuRunResult>());
  EXPECT_TRUE(rs[3].holds<NocRunResult>());
  EXPECT_TRUE(rs[5].holds<ThermalRunResult>());
}

TEST(ScenarioRegistry, PrefixSelectionAcrossFamilies) {
  const ScenarioRegistry reg = cross_domain_registry();
  // Family prefixes cut the catalog on segment boundaries regardless of the
  // domain behind each name.
  EXPECT_EQ(reg.names("noc").size(), 2u);
  EXPECT_EQ(reg.names("noc/uniform").size(), 2u);
  EXPECT_EQ(reg.names("noc/uniform/0").size(), 1u);
  EXPECT_TRUE(reg.names("noc/uni").empty());  // partial segment matches nothing
  EXPECT_EQ(reg.names("drm").size(), 2u);
  EXPECT_EQ(reg.names().size(), 6u);

  const auto batch = reg.build_batch_any("gpu");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id(), "gpu/enmpc/0");

  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_any(reg.build_batch_any("noc"));
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].id(), "noc/uniform/0");
  EXPECT_GT(res[0].metric("sim_avg_latency_cycles"), 0.0);
}

TEST(ScenarioRegistry, AnyBuilderErrors) {
  ScenarioRegistry reg;
  reg.add_any("any/0", [] { return AnyScenario(noc_scenario(1)); });
  // Duplicates are rejected across both builder flavors (one namespace).
  EXPECT_THROW(reg.add_any("any/0", [] { return AnyScenario(noc_scenario(2)); }),
               std::invalid_argument);
  EXPECT_THROW(reg.add("any/0", [] { return Scenario{}; }), std::invalid_argument);
  EXPECT_THROW(reg.add_any("", [] { return AnyScenario(noc_scenario(3)); }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_any("null", nullptr), std::invalid_argument);
  EXPECT_THROW(reg.build_any("missing"), std::invalid_argument);
  // A cross-domain entry has no DRM Scenario to return.
  EXPECT_THROW(reg.build("any/0"), std::invalid_argument);
  EXPECT_THROW(reg.build_batch(""), std::invalid_argument);
  // ... but the any-typed accessors reach DRM-typed entries.
  reg.add("drm/0", [] { return governor_scenario("", "SHA", 5); });
  EXPECT_EQ(reg.build_any("drm/0").id(), "drm/0");
  EXPECT_EQ(reg.build("drm/0").id, "drm/0");
}

TEST(ScenarioRegistry, RegistryBatchRunsOnEngine) {
  ScenarioRegistry reg;
  reg.add("run/0", [] { return governor_scenario("", "SHA", 21); });
  reg.add("run/1", [] { return governor_scenario("", "FFT", 22); });
  ExperimentEngine engine(ExperimentOptions{2});
  const auto res = engine.run_batch(reg.build_batch("run/"));
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].id, "run/0");
  EXPECT_GT(res[0].run.energy_ratio(), 0.0);
  EXPECT_GT(res[1].run.energy_ratio(), 0.0);
}

}  // namespace
}  // namespace oal::core
