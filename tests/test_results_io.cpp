// Tests for the JSONL results pipeline: writer escaping (round-tripped
// through the comparator's parser), record parsing, and the bench-regression
// comparator that tools/jsonl_compare wraps for CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/jsonl_compare.h"
#include "core/results_io.h"

namespace oal::core {
namespace {

/// Self-cleaning temp path for writer tests.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = std::string(::testing::TempDir()) + name;
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string contents() const {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST(JsonlWriter, EscapesControlCharactersAndPreservesUtf8) {
  TempFile tmp("jsonl_escape.jsonl");
  // Control characters, JSON specials, and multi-byte UTF-8 (é = 0xC3 0xA9):
  // high-bit bytes must pass through raw, never sign-extend into \uFFFF...
  // escapes.
  const std::string id = std::string("fig\x01/caf\xc3\xa9/\"quoted\"\\back\n\ttab");
  {
    JsonlWriter writer(tmp.path);
    ASSERT_TRUE(writer.enabled());
    writer.write_metrics("bench\x1f", id, Metrics{{"energy_j", 1.25}});
  }
  const std::string line = tmp.contents();
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  EXPECT_NE(line.find("\\u001f"), std::string::npos);
  EXPECT_NE(line.find("caf\xc3\xa9"), std::string::npos);  // raw UTF-8 bytes
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  EXPECT_EQ(line.find('\x01'), std::string::npos);  // no raw control bytes

  // Round-trip: parsing the written line recovers the exact original id.
  const JsonlRecord rec = parse_jsonl_record(line);
  EXPECT_EQ(rec.bench, "bench\x1f");
  EXPECT_EQ(rec.id, id);
  ASSERT_EQ(rec.metrics.size(), 1u);
  EXPECT_EQ(rec.metrics[0].first, "energy_j");
  EXPECT_DOUBLE_EQ(rec.metrics[0].second, 1.25);
}

TEST(JsonlWriter, NonFiniteMetricsSerializeAsNull) {
  TempFile tmp("jsonl_null.jsonl");
  {
    JsonlWriter writer(tmp.path);
    writer.write_metrics("b", "id", Metrics{{"nan_metric", std::nan("")}, {"ok", 2.0}});
  }
  const JsonlRecord rec = parse_jsonl_record(tmp.contents());
  ASSERT_EQ(rec.null_metrics.size(), 1u);
  EXPECT_EQ(rec.null_metrics[0], "nan_metric");
  ASSERT_EQ(rec.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.metrics[0].second, 2.0);
}

TEST(JsonlWriter, EmptyPathDisablesWrites) {
  JsonlWriter writer("");
  EXPECT_FALSE(writer.enabled());
  writer.write_metrics("b", "id", {});  // must not crash
}

TEST(JsonlWriter, SequentialWritersAppendByDefault) {
  // Two benches pointed at one --json path must both land in the file: the
  // advertised append-per-call contract holds across writer instances (the
  // old std::ios::trunc default silently dropped the first bench's records).
  TempFile tmp("jsonl_append.jsonl");
  {
    JsonlWriter first(tmp.path);
    first.write_metrics("bench_a", "a/0", Metrics{{"m", 1.0}});
  }
  {
    JsonlWriter second(tmp.path);
    second.write_metrics("bench_b", "b/0", Metrics{{"m", 2.0}});
  }
  std::istringstream in(tmp.contents());
  const auto recs = read_jsonl(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].bench, "bench_a");
  EXPECT_EQ(recs[1].bench, "bench_b");
  EXPECT_DOUBLE_EQ(recs[1].metrics[0].second, 2.0);
}

TEST(JsonlWriter, TruncateModeStartsOver) {
  // Baseline refreshes want a clean slate; Mode::kTruncate restores it.
  TempFile tmp("jsonl_trunc.jsonl");
  {
    JsonlWriter stale(tmp.path);
    stale.write_metrics("old", "old/0", Metrics{{"m", 1.0}});
  }
  {
    JsonlWriter fresh(tmp.path, JsonlWriter::Mode::kTruncate);
    fresh.write_metrics("new", "new/0", Metrics{{"m", 3.0}});
  }
  std::istringstream in(tmp.contents());
  const auto recs = read_jsonl(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].bench, "new");
}

TEST(JsonlParser, RejectsMalformedLines) {
  EXPECT_THROW(parse_jsonl_record("not json"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"bench\":\"b\""), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"bench\":\"b\"} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"unknown\":1}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"id\":\"\\udead\"}"), std::invalid_argument);
  // strtod would happily parse these; JSON (and the gate's math) cannot.
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":inf}}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":nan}}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":0x1f}}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":+1}}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":.5}}"), std::invalid_argument);
  EXPECT_THROW(parse_jsonl_record("{\"metrics\":{\"m\":1e999}}"), std::invalid_argument);
  // Negative and exponent forms the writer does emit still parse.
  const auto ok = parse_jsonl_record("{\"metrics\":{\"m\":-1.25e-3}}");
  EXPECT_DOUBLE_EQ(ok.metrics[0].second, -1.25e-3);
}

TEST(JsonlParser, ReadsMultipleRecordsSkippingBlankLines) {
  std::istringstream in(
      "{\"bench\":\"b\",\"id\":\"x\",\"metrics\":{\"m\":1}}\n"
      "\n"
      "   \n"
      "{\"bench\":\"b\",\"id\":\"y\",\"metrics\":{}}\n");
  const auto recs = read_jsonl(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "x");
  EXPECT_TRUE(recs[1].metrics.empty());
}

JsonlRecord make_record(const std::string& id, double value) {
  JsonlRecord r;
  r.bench = "bench";
  r.id = id;
  r.metrics.emplace_back("metric", value);
  return r;
}

TEST(JsonlCompare, IdenticalRunsPass) {
  const std::vector<JsonlRecord> run{make_record("a", 1.0), make_record("b", 2.0)};
  const auto res = compare_jsonl(run, run);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.records_compared, 2u);
  EXPECT_EQ(res.metrics_compared, 2u);
}

TEST(JsonlCompare, DriftBeyondToleranceFails) {
  const std::vector<JsonlRecord> base{make_record("a", 100.0)};
  JsonlCompareOptions opts;
  opts.rel_tol = 0.02;
  // 1% drift: within tolerance.
  EXPECT_TRUE(compare_jsonl(base, {make_record("a", 101.0)}, opts).ok());
  // 5% drift in either direction: flagged.
  EXPECT_FALSE(compare_jsonl(base, {make_record("a", 105.0)}, opts).ok());
  EXPECT_FALSE(compare_jsonl(base, {make_record("a", 95.0)}, opts).ok());
}

TEST(JsonlCompare, AbsoluteToleranceGovernsNearZeroMetrics) {
  const std::vector<JsonlRecord> base{make_record("a", 0.0)};
  JsonlCompareOptions opts;
  opts.rel_tol = 0.02;
  opts.abs_tol = 1e-6;
  EXPECT_TRUE(compare_jsonl(base, {make_record("a", 5e-7)}, opts).ok());
  EXPECT_FALSE(compare_jsonl(base, {make_record("a", 1e-3)}, opts).ok());
}

TEST(JsonlCompare, MissingRecordsAndMetricsAreFailures) {
  const std::vector<JsonlRecord> base{make_record("a", 1.0), make_record("gone", 1.0)};
  {
    const auto res = compare_jsonl(base, {make_record("a", 1.0)});
    ASSERT_EQ(res.issues.size(), 1u);
    EXPECT_NE(res.issues[0].find("missing record"), std::string::npos);
  }
  {
    JsonlRecord renamed = make_record("a", 1.0);
    renamed.metrics[0].first = "other_metric";
    const auto res = compare_jsonl({make_record("a", 1.0)}, {renamed});
    ASSERT_EQ(res.issues.size(), 1u);
    EXPECT_NE(res.issues[0].find("missing from current"), std::string::npos);
  }
}

TEST(JsonlCompare, ExtraCurrentRecordsAreNotFailures) {
  // New scenarios appear as the repo grows; only baseline coverage is gated.
  const std::vector<JsonlRecord> base{make_record("a", 1.0)};
  const std::vector<JsonlRecord> cur{make_record("a", 1.0), make_record("new", 9.0)};
  const auto res = compare_jsonl(base, cur);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.records_only_in_current, 1u);
}

TEST(JsonlCompare, NullBaselineMetricsAreFailures) {
  // A null baseline metric would otherwise be silently excluded from every
  // future comparison — the gate must demand a fixed baseline instead.
  JsonlRecord base = make_record("a", 1.0);
  base.null_metrics.push_back("broken_metric");
  const auto res = compare_jsonl({base}, {make_record("a", 1.0)});
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.issues[0].find("broken_metric"), std::string::npos);
  EXPECT_NE(res.issues[0].find("ungatable"), std::string::npos);
}

TEST(JsonlCompare, DuplicateRecordsAreFailures) {
  // Last-wins lookup on duplicated (bench, id) could gate the wrong record;
  // duplicates in either file are an explicit error.
  const std::vector<JsonlRecord> dup{make_record("a", 1.0), make_record("a", 2.0)};
  const std::vector<JsonlRecord> clean{make_record("a", 1.0)};
  {
    const auto res = compare_jsonl(clean, dup);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.issues[0].find("duplicate record in current"), std::string::npos);
  }
  {
    const auto res = compare_jsonl(dup, clean);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.issues[0].find("duplicate record in baseline"), std::string::npos);
  }
}

JsonlRecord make_record2(const std::string& id, double a, double b) {
  JsonlRecord r;
  r.bench = "bench";
  r.id = id;
  r.metrics.emplace_back("stable_metric", a);
  r.metrics.emplace_back("chaotic_metric", b);
  return r;
}

TEST(JsonlCompare, MetricFilterGatesOnlySelectedMetrics) {
  const std::vector<JsonlRecord> base{make_record2("a", 100.0, 1.0)};
  const std::vector<JsonlRecord> cur{make_record2("a", 100.5, 50.0)};  // chaotic drifted 50x
  JsonlCompareOptions opts;
  opts.rel_tol = 0.02;
  opts.metrics = {"stable_metric"};
  const auto res = compare_jsonl(base, cur, opts);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.metrics_compared, 1u);
  // Without the filter the chaotic metric fails.
  opts.metrics.clear();
  EXPECT_FALSE(compare_jsonl(base, cur, opts).ok());
}

TEST(JsonlCompare, MetricFilterSupportsPrefixElements) {
  const std::vector<JsonlRecord> base{make_record2("a", 100.0, 1.0)};
  const std::vector<JsonlRecord> cur{make_record2("a", 100.0, 99.0)};
  JsonlCompareOptions opts;
  opts.metrics = {"stable_*"};
  EXPECT_TRUE(compare_jsonl(base, cur, opts).ok());
  opts.metrics = {"chaotic_*"};
  EXPECT_FALSE(compare_jsonl(base, cur, opts).ok());
}

TEST(JsonlCompare, UnknownFilterAndOverrideNamesAreErrors) {
  // A typo in --metrics or a tolerance override would otherwise silently
  // gate (or loosen) nothing.
  const std::vector<JsonlRecord> base{make_record2("a", 1.0, 2.0)};
  {
    JsonlCompareOptions opts;
    opts.metrics = {"stable_metric", "tpyo_metric"};
    const auto res = compare_jsonl(base, base, opts);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.issues[0].find("tpyo_metric"), std::string::npos);
  }
  {
    JsonlCompareOptions opts;
    opts.metrics = {"nothing_*"};
    EXPECT_FALSE(compare_jsonl(base, base, opts).ok());
  }
  {
    JsonlCompareOptions opts;
    opts.rel_tol_for["tpyo_metric"] = 0.5;
    EXPECT_FALSE(compare_jsonl(base, base, opts).ok());
  }
  {
    // Overrides are exact-name lookups; a prefix-form key would silently
    // override nothing, so it is rejected too.
    JsonlCompareOptions opts;
    opts.rel_tol_for["stable_*"] = 0.5;
    EXPECT_FALSE(compare_jsonl(base, base, opts).ok());
  }
}

TEST(JsonlCompare, PerMetricToleranceOverrides) {
  const std::vector<JsonlRecord> base{make_record2("a", 100.0, 100.0)};
  const std::vector<JsonlRecord> cur{make_record2("a", 101.0, 110.0)};  // 1% and 10% drift
  JsonlCompareOptions opts;
  opts.rel_tol = 0.02;
  // Globally the chaotic metric fails at 10%...
  EXPECT_FALSE(compare_jsonl(base, cur, opts).ok());
  // ...a per-metric loosening admits it without widening the stable gate.
  opts.rel_tol_for["chaotic_metric"] = 0.2;
  EXPECT_TRUE(compare_jsonl(base, cur, opts).ok());
  // A per-metric tightening works the other way.
  opts.rel_tol_for["stable_metric"] = 1e-4;
  EXPECT_FALSE(compare_jsonl(base, cur, opts).ok());
  // Absolute overrides govern near-zero metrics independently.
  const std::vector<JsonlRecord> zbase{make_record2("z", 0.0, 0.0)};
  const std::vector<JsonlRecord> zcur{make_record2("z", 1e-4, 0.0)};
  JsonlCompareOptions zopts;
  EXPECT_FALSE(compare_jsonl(zbase, zcur, zopts).ok());
  zopts.abs_tol_for["stable_metric"] = 1e-3;
  EXPECT_TRUE(compare_jsonl(zbase, zcur, zopts).ok());
}

TEST(JsonlCompare, FilteredOutNullBaselineMetricsAreIgnored) {
  // The filter is how a bench with a known-broken metric gates the rest.
  JsonlRecord base = make_record("a", 1.0);
  base.null_metrics.push_back("broken_metric");
  JsonlCompareOptions opts;
  opts.metrics = {"metric"};
  EXPECT_TRUE(compare_jsonl({base}, {make_record("a", 1.0)}, opts).ok());
  // Selecting the null metric still fails loudly.
  opts.metrics = {"metric", "broken_metric"};
  EXPECT_FALSE(compare_jsonl({base}, {make_record("a", 1.0)}, opts).ok());
}

TEST(JsonPathArg, ParsesFlagPair) {
  const char* argv1[] = {"bench", "--json", "/tmp/x.jsonl"};
  EXPECT_EQ(json_path_arg(3, const_cast<char**>(argv1)), "/tmp/x.jsonl");
  const char* argv2[] = {"bench"};
  EXPECT_EQ(json_path_arg(1, const_cast<char**>(argv2)), "");
  const char* argv3[] = {"bench", "--json"};
  EXPECT_THROW(json_path_arg(2, const_cast<char**>(argv3)), std::invalid_argument);
}

}  // namespace
}  // namespace oal::core
