// Tests for the analytic big.LITTLE platform model: physical sanity of the
// performance/power surfaces and of the generated Table-I counters.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "soc/platform.h"

namespace oal::soc {
namespace {

SnippetDescriptor compute_bound() {
  SnippetDescriptor s;
  s.instructions = 20e6;
  s.base_cpi_little = 1.5;
  s.base_cpi_big = 0.8;
  s.l2_mpki = 0.2;
  s.branch_mpki = 1.0;
  s.parallel_fraction = 0.05;
  s.max_threads = 1;
  return s;
}

SnippetDescriptor memory_bound() {
  SnippetDescriptor s = compute_bound();
  s.l2_mpki = 10.0;
  s.base_cpi_big = 1.1;
  s.base_cpi_little = 2.0;
  return s;
}

SnippetDescriptor parallel_workload() {
  SnippetDescriptor s = compute_bound();
  s.parallel_fraction = 0.95;
  s.max_threads = 4;
  return s;
}

TEST(Platform, VoltageCurvesMonotone) {
  BigLittlePlatform p;
  EXPECT_LT(p.voltage_little(200), p.voltage_little(800));
  EXPECT_LT(p.voltage_little(800), p.voltage_little(1400));
  EXPECT_LT(p.voltage_big(200), p.voltage_big(2000));
  EXPECT_NEAR(p.voltage_little(200), p.params().v_min_little, 1e-12);
  EXPECT_NEAR(p.voltage_big(2000), p.params().v_max_big, 1e-12);
}

TEST(Platform, HigherFrequencyIsFaster) {
  BigLittlePlatform p;
  const auto s = compute_bound();
  const auto slow = p.execute_ideal(s, {1, 1, 0, 4});
  const auto fast = p.execute_ideal(s, {1, 1, 0, 18});
  EXPECT_LT(fast.exec_time_s, slow.exec_time_s);
}

TEST(Platform, HigherFrequencyDrawsMorePower) {
  BigLittlePlatform p;
  const auto s = compute_bound();
  const auto slow = p.execute_ideal(s, {1, 1, 0, 4});
  const auto fast = p.execute_ideal(s, {1, 1, 0, 18});
  EXPECT_GT(fast.avg_power_w, slow.avg_power_w);
}

TEST(Platform, BigCoreFasterThanLittleForIlpCode) {
  BigLittlePlatform p;
  const auto s = compute_bound();
  const auto little = p.execute_ideal(s, {1, 0, 12, 0});   // L1@1400, big off
  const auto big = p.execute_ideal(s, {1, 1, 0, 12});      // B1@1400
  EXPECT_LT(big.exec_time_s, little.exec_time_s);
}

TEST(Platform, MemoryWallCapsFrequencyScaling) {
  // For memory-bound code, doubling frequency must yield far less than 2x
  // speedup; for compute-bound code it should be close to 2x.
  BigLittlePlatform p;
  const SocConfig f1{1, 1, 0, 8};   // big @ 1000
  const SocConfig f2{1, 1, 0, 18};  // big @ 2000
  const double su_compute = p.execute_ideal(compute_bound(), f1).exec_time_s /
                            p.execute_ideal(compute_bound(), f2).exec_time_s;
  const double su_memory = p.execute_ideal(memory_bound(), f1).exec_time_s /
                           p.execute_ideal(memory_bound(), f2).exec_time_s;
  EXPECT_GT(su_compute, 1.8);
  EXPECT_LT(su_memory, su_compute - 0.2);
}

TEST(Platform, ParallelWorkloadScalesWithCores) {
  BigLittlePlatform p;
  const auto s = parallel_workload();
  const auto one = p.execute_ideal(s, {1, 0, 12, 0});
  const auto four = p.execute_ideal(s, {4, 0, 12, 0});
  const double speedup = one.exec_time_s / four.exec_time_s;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 4.0);  // sync overhead forbids ideal scaling
}

TEST(Platform, SerialWorkloadGainsNothingFromCores) {
  BigLittlePlatform p;
  auto s = compute_bound();
  s.parallel_fraction = 0.0;
  const auto one = p.execute_ideal(s, {1, 0, 12, 0});
  const auto four = p.execute_ideal(s, {4, 0, 12, 0});
  EXPECT_NEAR(one.exec_time_s, four.exec_time_s, one.exec_time_s * 0.01);
  // But idle cores still leak: more power at 4 cores.
  EXPECT_GT(four.avg_power_w, one.avg_power_w);
}

TEST(Platform, ThreadLimitCapsParallelSpeedup) {
  BigLittlePlatform p;
  auto s = parallel_workload();
  s.max_threads = 2;
  const auto two = p.execute_ideal(s, {2, 0, 12, 0});
  const auto four = p.execute_ideal(s, {4, 0, 12, 0});
  // Extra cores beyond the thread count must not speed things up.
  EXPECT_NEAR(two.exec_time_s, four.exec_time_s, two.exec_time_s * 0.02);
}

TEST(Platform, EnergyEqualsPowerTimesTime) {
  BigLittlePlatform p;
  const auto r = p.execute_ideal(compute_bound(), {2, 1, 5, 9});
  EXPECT_NEAR(r.energy_j, r.avg_power_w * r.exec_time_s, 1e-12);
}

TEST(Platform, CountersMatchDescriptors) {
  BigLittlePlatform p;
  const auto s = memory_bound();
  const auto r = p.execute_ideal(s, {2, 1, 5, 9});
  const PerfCounters& k = r.counters;
  EXPECT_DOUBLE_EQ(k.instructions_retired, s.instructions);
  EXPECT_NEAR(k.l2_cache_misses, s.l2_mpki / 1000.0 * s.instructions, 1.0);
  EXPECT_NEAR(k.branch_mispredictions, s.branch_mpki / 1000.0 * s.instructions, 1.0);
  EXPECT_NEAR(k.data_memory_accesses, s.mem_access_per_inst * s.instructions, 1.0);
  EXPECT_GT(k.noncache_external_requests, k.l2_cache_misses);  // writebacks
  EXPECT_GE(k.little_cluster_utilization, 0.0);
  EXPECT_LE(k.little_cluster_utilization, 1.0);
  EXPECT_GE(k.big_cluster_utilization, 0.0);
  EXPECT_LE(k.big_cluster_utilization, 1.0);
  EXPECT_DOUBLE_EQ(k.total_power_w, r.avg_power_w);
}

TEST(Platform, RunnableThreadsReflectsParallelism) {
  BigLittlePlatform p;
  const auto serial = p.execute_ideal(compute_bound(), {1, 0, 12, 0});
  EXPECT_NEAR(serial.counters.avg_runnable_threads, 1.0, 0.2);
  // Parallel workload on ONE core: run queue must still reveal the waiting
  // threads (this is what makes core-count decisions observable at all).
  const auto par = p.execute_ideal(parallel_workload(), {1, 0, 12, 0});
  EXPECT_GT(par.counters.avg_runnable_threads, 3.0);
}

TEST(Platform, BigClusterOffDrawsNoBigPower) {
  BigLittlePlatform p;
  const auto s = compute_bound();
  const auto off = p.execute_ideal(s, {1, 0, 6, 18});
  const auto on = p.execute_ideal(s, {1, 1, 6, 18});
  EXPECT_GT(on.avg_power_w, off.avg_power_w + 0.1);
  // Big frequency is irrelevant when the cluster is gated.
  const auto off_lo = p.execute_ideal(s, {1, 0, 6, 0});
  EXPECT_NEAR(off.avg_power_w, off_lo.avg_power_w, 1e-12);
  EXPECT_NEAR(off.exec_time_s, off_lo.exec_time_s, 1e-12);
}

TEST(Platform, ExecuteAddsBoundedNoise) {
  BigLittlePlatform p({}, 123);
  const auto s = compute_bound();
  const SocConfig c{2, 2, 8, 10};
  const auto ideal = p.execute_ideal(s, c);
  common::RunningStats rel;
  for (int i = 0; i < 200; ++i) {
    const auto noisy = p.execute(s, c);
    rel.add(noisy.counters.total_power_w / ideal.counters.total_power_w);
  }
  EXPECT_NEAR(rel.mean(), 1.0, 0.01);
  EXPECT_LT(rel.stddev(), 0.05);
}

TEST(Platform, ExecuteIdealIsDeterministic) {
  BigLittlePlatform p;
  const auto s = memory_bound();
  const SocConfig c{3, 2, 4, 7};
  const auto a = p.execute_ideal(s, c);
  const auto b = p.execute_ideal(s, c);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
}

TEST(Platform, InvalidConfigThrows) {
  BigLittlePlatform p;
  EXPECT_THROW(p.execute_ideal(compute_bound(), {0, 0, 0, 0}), std::invalid_argument);
}

TEST(Platform, BestEnergyConfigBeatsArbitraryConfigs) {
  BigLittlePlatform p;
  const auto s = memory_bound();
  const SocConfig best = p.best_energy_config(s);
  const double e_best = p.execute_ideal(s, best).energy_j;
  for (std::size_t i = 0; i < p.space().size(); i += 97) {
    EXPECT_LE(e_best, p.execute_ideal(s, p.space().config_at(i)).energy_j + 1e-12);
  }
}

}  // namespace
}  // namespace oal::soc
