// Tests for recursive least squares and the STAFF adaptive-forgetting model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/rls.h"
#include "ml/staff.h"

namespace oal::ml {
namespace {

using common::Rng;
using common::Vec;

Vec features3(Rng& rng) { return {1.0, rng.uniform(-1, 1), rng.uniform(-1, 1)}; }

TEST(Rls, RecoversLinearFunction) {
  Rng rng(1);
  RecursiveLeastSquares rls(3, {1.0, 1e3, 0.0});
  const Vec truth{0.5, -2.0, 3.0};
  for (int i = 0; i < 300; ++i) {
    const Vec x = features3(rng);
    rls.update(x, common::dot(truth, x));
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(rls.weights()[i], truth[i], 1e-4);
}

TEST(Rls, PredictionErrorShrinks) {
  Rng rng(2);
  RecursiveLeastSquares rls(3, {0.99, 1e3, 0.0});
  const Vec truth{1.0, 2.0, -1.0};
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 400; ++i) {
    const Vec x = features3(rng);
    const double e = std::abs(rls.update(x, common::dot(truth, x) + rng.normal(0.0, 0.01)));
    if (i < 20) early += e;
    if (i >= 380) late += e;
  }
  EXPECT_LT(late, early * 0.5);
}

TEST(Rls, ForgettingTracksDrift) {
  // Abrupt coefficient change: lambda < 1 should re-converge, lambda == 1
  // (infinite memory) should lag.
  auto run = [](double lambda) {
    Rng rng(3);
    RecursiveLeastSquares rls(2, {lambda, 1e3, 0.0});
    Vec truth{1.0, 1.0};
    double tail_err = 0.0;
    for (int i = 0; i < 600; ++i) {
      if (i == 300) truth = {-2.0, 0.5};
      const Vec x{1.0, rng.uniform(-1, 1)};
      const double e = std::abs(rls.update(x, common::dot(truth, x)));
      if (i >= 580) tail_err += e;
    }
    return tail_err;
  };
  EXPECT_LT(run(0.95), run(1.0) * 0.8 + 1e-9);
}

TEST(Rls, InvalidConfigThrows) {
  EXPECT_THROW(RecursiveLeastSquares(0), std::invalid_argument);
  EXPECT_THROW(RecursiveLeastSquares(2, {1.5, 1e3, 0.0}), std::invalid_argument);
  EXPECT_THROW(RecursiveLeastSquares(2, {0.9, -1.0, 0.0}), std::invalid_argument);
}

TEST(Rls, DimMismatchThrows) {
  RecursiveLeastSquares rls(3);
  EXPECT_THROW(rls.update({1.0, 2.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(rls.set_weights({1.0}), std::invalid_argument);
}

TEST(Rls, SetWeightsBootstrap) {
  RecursiveLeastSquares rls(2);
  rls.set_weights({3.0, -1.0});
  EXPECT_DOUBLE_EQ(rls.predict({1.0, 1.0}), 2.0);
}

TEST(Rls, CovarianceResetKeepsWeights) {
  Rng rng(5);
  RecursiveLeastSquares rls(2, {0.98, 100.0, 0.0});
  for (int i = 0; i < 50; ++i) {
    const Vec x{1.0, rng.uniform(-1, 1)};
    rls.update(x, 2.0 * x[1]);
  }
  const Vec w = rls.weights();
  rls.reset_covariance();
  EXPECT_EQ(rls.weights(), w);
  EXPECT_NEAR(rls.covariance()(0, 0), 100.0, 1e-12);
}

TEST(Staff, RecoversLinearFunctionLikeRls) {
  Rng rng(7);
  StaffModel m(3);
  const Vec truth{0.5, -2.0, 3.0};
  for (int i = 0; i < 500; ++i) {
    const Vec x = features3(rng);
    m.update(x, common::dot(truth, x) + rng.normal(0.0, 0.005));
  }
  Rng test_rng(8);
  for (int i = 0; i < 20; ++i) {
    const Vec x = features3(test_rng);
    EXPECT_NEAR(m.predict(x), common::dot(truth, x), 0.05);
  }
}

TEST(Staff, LambdaDropsOnRegimeChange) {
  Rng rng(9);
  StaffConfig cfg;
  cfg.lambda_min = 0.85;
  StaffModel m(2, cfg);
  Vec truth{1.0, 1.0};
  // Converge.
  for (int i = 0; i < 200; ++i) {
    const Vec x{1.0, rng.uniform(-1, 1)};
    m.update(x, common::dot(truth, x) + rng.normal(0.0, 0.01));
  }
  const double lambda_steady = m.lambda();
  // Regime change: first few updates must push lambda down.
  truth = {-4.0, 2.0};
  double lambda_min_seen = 1.0;
  for (int i = 0; i < 10; ++i) {
    const Vec x{1.0, rng.uniform(-1, 1)};
    m.update(x, common::dot(truth, x) + rng.normal(0.0, 0.01));
    lambda_min_seen = std::min(lambda_min_seen, m.lambda());
  }
  EXPECT_LT(lambda_min_seen, lambda_steady);
}

TEST(Staff, AdaptsFasterThanFixedHighLambda) {
  auto tail_error = [](bool adaptive) {
    Rng rng(11);
    Vec truth{1.0, 2.0};
    StaffConfig cfg;
    if (!adaptive) {
      cfg.lambda_min = cfg.lambda_max = cfg.lambda_init = 0.999;
    }
    StaffModel m(2, cfg);
    double tail = 0.0;
    for (int i = 0; i < 400; ++i) {
      if (i == 200) truth = {-3.0, 0.5};
      const Vec x{1.0, rng.uniform(-1, 1)};
      const double e = std::abs(m.update(x, common::dot(truth, x)));
      if (i >= 210 && i < 260) tail += std::abs(e);
    }
    return tail;
  };
  EXPECT_LT(tail_error(true), tail_error(false));
}

TEST(Staff, FeatureSelectionDropsIrrelevant) {
  Rng rng(13);
  StaffConfig cfg;
  cfg.top_k = 2;
  cfg.warmup = 32;
  cfg.reselect_period = 32;
  StaffModel m(4, cfg);
  // Only features 0 and 2 matter; 1 and 3 are noise inputs.
  for (int i = 0; i < 300; ++i) {
    const Vec x{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    m.update(x, 2.0 * x[0] - 1.5 * x[2]);
  }
  EXPECT_EQ(m.num_active(), 2u);
  EXPECT_TRUE(m.active_mask()[0]);
  EXPECT_TRUE(m.active_mask()[2]);
  EXPECT_FALSE(m.active_mask()[1]);
  EXPECT_FALSE(m.active_mask()[3]);
}

TEST(Staff, InvalidConfigThrows) {
  StaffConfig bad;
  bad.lambda_min = 0.99;
  bad.lambda_max = 0.9;
  EXPECT_THROW(StaffModel(2, bad), std::invalid_argument);
  StaffConfig too_many;
  too_many.top_k = 5;
  EXPECT_THROW(StaffModel(2, too_many), std::invalid_argument);
}

}  // namespace
}  // namespace oal::ml
