// Tests for the fleet subsystem: seeded device-population determinism,
// quantized-corner boundedness, cohort-id parsing, the fixed-capacity
// streaming aggregator, and the end-to-end contract that a sharded fleet
// sweep aggregates bitwise-identically serial vs N-thread.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/domain.h"
#include "core/experiment.h"
#include "core/oracle.h"
#include "fleet/aggregator.h"
#include "fleet/device_population.h"

namespace oal::fleet {
namespace {

using core::AnyResult;
using core::Metrics;

PopulationConfig small_config(std::size_t devices) {
  PopulationConfig cfg;
  cfg.devices = devices;
  cfg.snippets_per_device = 8;
  return cfg;
}

/// A synthetic per-device result in the fleet id scheme, carrying exactly
/// the metrics the aggregator reads.
AnyResult device_result(const std::string& id, double snippets, double clamped,
                        double energy_ratio, double peak_skin_c) {
  return AnyResult(id, 0,
                   Metrics{{"snippets", snippets},
                           {"clamped_snippets", clamped},
                           {"energy_ratio", energy_ratio},
                           {"peak_skin_c", peak_skin_c}});
}

TEST(DevicePopulation, SpecIsDeterministicAndOrderIndependent) {
  const PopulationConfig cfg = small_config(24);
  const DevicePopulation a(cfg);
  const DevicePopulation b(cfg);
  // Query b backwards and a forwards: spec(i) is a pure function of
  // (config, index), so generation order must not matter.
  std::vector<DeviceSpec> reversed(cfg.devices);
  for (std::size_t i = cfg.devices; i-- > 0;) reversed[i] = b.spec(i);
  for (std::size_t i = 0; i < cfg.devices; ++i) {
    const DeviceSpec sa = a.spec(i);
    const DeviceSpec& sb = reversed[i];
    EXPECT_EQ(sa.id, sb.id);
    EXPECT_EQ(sa.cohort, sb.cohort);
    EXPECT_EQ(sa.corner, sb.corner);
    EXPECT_EQ(sa.vbin, sb.vbin);
    EXPECT_EQ(sa.ambient_c, sb.ambient_c);  // bitwise: same Rng stream
    EXPECT_EQ(sa.platform.leak_big_w_per_v, sb.platform.leak_big_w_per_v);
    EXPECT_EQ(sa.platform.v_max_big, sb.platform.v_max_big);
    ASSERT_EQ(sa.trace.size(), sb.trace.size());
    EXPECT_EQ(sa.trace.size(), cfg.snippets_per_device);
    for (std::size_t k = 0; k < sa.trace.size(); ++k)
      EXPECT_EQ(sa.trace[k].l2_mpki, sb.trace[k].l2_mpki);
  }
  // A different master seed moves every downstream draw.
  PopulationConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(DevicePopulation(other).spec(0).ambient_c, a.spec(0).ambient_c);
}

TEST(DevicePopulation, QuantizedCornersKeepThePlatformSetBounded) {
  const DevicePopulation pop(small_config(160));
  std::set<std::pair<double, double>> fingerprints;
  std::set<std::string> cohorts;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const DeviceSpec d = pop.spec(i);
    fingerprints.insert({d.platform.leak_big_w_per_v, d.platform.v_max_big});
    cohorts.insert(d.cohort);
    EXPECT_LT(d.corner, DevicePopulation::corner_names().size());
    EXPECT_LT(d.vbin, DevicePopulation::vbin_names().size());
    EXPECT_GE(d.ambient_c, 5.0);
    EXPECT_LE(d.ambient_c, 42.0);
  }
  // 3 corners x 3 voltage bins: at most 9 distinct platforms — that is the
  // whole point (the fleet shares per-corner Oracle searches).  With 160
  // devices the typ-heavy draw still populates several corners and cohorts.
  EXPECT_LE(fingerprints.size(), 9u);
  EXPECT_GE(fingerprints.size(), 5u);
  EXPECT_GE(cohorts.size(), 6u);
}

TEST(DevicePopulation, CohortOfIdRoundTripsAndRejects) {
  const DevicePopulation pop(small_config(12));
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const DeviceSpec d = pop.spec(i);
    EXPECT_EQ(DevicePopulation::cohort_of_id(d.id), d.cohort);
  }
  EXPECT_EQ(DevicePopulation::cohort_of_id("fleet/typ/vnom/hot/d00042"), "typ/vnom/hot");
  EXPECT_THROW(DevicePopulation::cohort_of_id("fig2/arm"), std::invalid_argument);
  EXPECT_THROW(DevicePopulation::cohort_of_id("fleet/"), std::invalid_argument);
  EXPECT_THROW(DevicePopulation::cohort_of_id(""), std::invalid_argument);
}

TEST(DevicePopulation, ConfigIsValidated) {
  PopulationConfig cfg;
  cfg.devices = 0;
  EXPECT_THROW(DevicePopulation{cfg}, std::invalid_argument);
  cfg = PopulationConfig{};
  cfg.snippets_per_device = 0;
  EXPECT_THROW(DevicePopulation{cfg}, std::invalid_argument);
  cfg = PopulationConfig{};
  cfg.snippets_per_device = cfg.canonical_snippets_per_app + 1;
  EXPECT_THROW(DevicePopulation{cfg}, std::invalid_argument);
  EXPECT_THROW(DevicePopulation(small_config(3)).spec(3), std::out_of_range);
}

TEST(DevicePopulation, GeneratorYieldsWholeFleetInIndexOrderAndOutlivesIt) {
  core::ExperimentEngine::AnyGenerator gen;
  std::vector<std::string> expect;
  {
    const DevicePopulation pop(small_config(10));
    for (std::size_t i = 0; i < pop.size(); ++i) expect.push_back(pop.spec(i).id);
    gen = pop.generator();
  }  // the generator holds its own copy; the population may go away
  std::vector<std::string> got;
  while (auto s = gen()) got.push_back(s->id());
  EXPECT_EQ(got, expect);
  EXPECT_FALSE(gen().has_value());  // exhausted stays exhausted
}

TEST(StreamingMetric, ExactStatsAndRingWindow) {
  StreamingMetric m(4);
  for (const double x : {5.0, 1.0, 9.0, 3.0}) m.add(x);
  EXPECT_EQ(m.stats().count(), 4u);
  EXPECT_EQ(m.stats().min(), 1.0);
  EXPECT_EQ(m.stats().max(), 9.0);
  EXPECT_DOUBLE_EQ(m.stats().mean(), 4.5);
  EXPECT_EQ(m.window(), 4u);
  EXPECT_DOUBLE_EQ(m.percentile(50.0), 4.0);  // (3 + 5) / 2

  // Past capacity the ring keeps the most recent 4 for percentiles while the
  // exact accumulators keep seeing everything.
  m.add(100.0);
  m.add(101.0);
  EXPECT_EQ(m.stats().count(), 6u);
  EXPECT_EQ(m.stats().max(), 101.0);
  EXPECT_EQ(m.window(), 4u);
  EXPECT_EQ(m.percentile(100.0), 101.0);
  EXPECT_EQ(m.percentile(0.0), 3.0);  // 5.0 and 1.0 have been evicted
  EXPECT_THROW(StreamingMetric{0}, std::invalid_argument);
  EXPECT_THROW(StreamingMetric{2}.percentile(50.0), std::invalid_argument);
}

TEST(PopulationAggregator, ExactCountsCohortsAndWorstN) {
  PopulationAggregator agg(/*t_max_skin_c=*/43.0, /*worst_n=*/3);
  agg.add(device_result("fleet/typ/vnom/hot/d00000", 10, 4, 2.0, 44.5));   // violation
  agg.add(device_result("fleet/typ/vnom/hot/d00001", 10, 0, 1.5, 40.0));
  agg.add(device_result("fleet/slow/vlow/cool/d00002", 20, 0, 3.0, 20.0));
  agg.add(device_result("fleet/slow/vlow/cool/d00003", 20, 10, 3.0, 21.0));  // ties d2 on ratio
  agg.add(device_result("fleet/fast/vhigh/hot/d00004", 10, 10, 1.2, 43.0));  // == limit: no viol

  const CohortStats& pop = agg.population();
  EXPECT_EQ(agg.devices(), 5u);
  EXPECT_EQ(pop.devices, 5u);
  EXPECT_EQ(pop.snippets, 70u);
  EXPECT_EQ(pop.clamped, 24u);
  EXPECT_EQ(pop.skin_violations, 1u);
  EXPECT_DOUBLE_EQ(pop.energy_ratio.stats().mean(), (2.0 + 1.5 + 3.0 + 3.0 + 1.2) / 5.0);
  EXPECT_DOUBLE_EQ(pop.clamp_rate.stats().max(), 1.0);

  ASSERT_EQ(agg.cohorts().size(), 3u);
  const CohortStats& hot = agg.cohorts().at("typ/vnom/hot");
  EXPECT_EQ(hot.devices, 2u);
  EXPECT_EQ(hot.snippets, 20u);
  EXPECT_EQ(hot.clamped, 4u);
  EXPECT_EQ(hot.skin_violations, 1u);
  EXPECT_EQ(agg.cohorts().at("slow/vlow/cool").devices, 2u);

  // Worst-3 by energy ratio, id as the tie-break, truncated at N.
  ASSERT_EQ(agg.worst().size(), 3u);
  EXPECT_EQ(agg.worst()[0].id, "fleet/slow/vlow/cool/d00002");
  EXPECT_EQ(agg.worst()[1].id, "fleet/slow/vlow/cool/d00003");
  EXPECT_EQ(agg.worst()[2].id, "fleet/typ/vnom/hot/d00000");

  // Non-fleet ids are a caller bug, not silently mis-bucketed.
  EXPECT_THROW(agg.add(device_result("gov/0", 1, 0, 1.0, 20.0)), std::invalid_argument);
}

/// Everything the fleet bench reports, flattened for bitwise comparison.
std::vector<std::pair<std::string, double>> flatten(const PopulationAggregator& agg) {
  std::vector<std::pair<std::string, double>> out;
  const auto fold = [&out](const std::string& key, const CohortStats& c) {
    out.emplace_back(key + "/devices", static_cast<double>(c.devices));
    out.emplace_back(key + "/snippets", static_cast<double>(c.snippets));
    out.emplace_back(key + "/clamped", static_cast<double>(c.clamped));
    out.emplace_back(key + "/violations", static_cast<double>(c.skin_violations));
    out.emplace_back(key + "/er_mean", c.energy_ratio.stats().mean());
    out.emplace_back(key + "/er_p50", c.energy_ratio.percentile(50.0));
    out.emplace_back(key + "/er_p99", c.energy_ratio.percentile(99.0));
    out.emplace_back(key + "/cr_mean", c.clamp_rate.stats().mean());
    out.emplace_back(key + "/skin_p99", c.peak_skin_c.percentile(99.0));
  };
  fold("population", agg.population());
  for (const auto& [cohort, stats] : agg.cohorts()) fold(cohort, stats);
  for (const TailDevice& d : agg.worst()) {
    out.emplace_back("worst/" + d.id, d.energy_ratio);
    out.emplace_back("worst-skin/" + d.id, d.peak_skin_c);
  }
  return out;
}

TEST(Fleet, ShardedSweepAggregatesIdenticallySerialVsParallel) {
  // The full contract behind the fleet bench: stream the same population
  // through run_any_streaming with 1 worker and with 4, same shard size,
  // and the aggregate — Welford means, windowed percentiles, worst-N table,
  // every exact counter — must be BITWISE identical, because per-shard
  // delivery order is a pure function of the shard's ids.
  const auto sweep = [](std::size_t threads) {
    core::ExperimentEngine engine(core::ExperimentOptions{threads});
    auto cache = std::make_shared<core::OracleCache>(nullptr, &engine.pool());
    const DevicePopulation pop(small_config(10), cache);
    PopulationAggregator agg(pop.config().t_max_skin_c, /*worst_n=*/5);
    const std::size_t ran = engine.run_any_streaming(
        pop.generator(), [&](AnyResult&& r) { agg.add(r); }, core::StreamOptions{4});
    EXPECT_EQ(ran, pop.size());
    return flatten(agg);
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first);
    EXPECT_EQ(serial[i].second, parallel[i].second) << serial[i].first;
  }
  // Sanity on the content: 10 devices ran under binding-able thermal limits.
  const auto devices = serial.front();
  EXPECT_EQ(devices.first, "population/devices");
  EXPECT_EQ(devices.second, 10.0);
}

}  // namespace
}  // namespace oal::fleet
