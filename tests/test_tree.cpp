// Tests for CART regression and classification trees.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "ml/tree.h"

namespace oal::ml {
namespace {

using common::Rng;
using common::Vec;

TEST(RegressionTree, FitsPiecewiseConstant) {
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double t = i / 100.0;
    x.push_back({t});
    y.push_back(t < 0.5 ? 1.0 : 5.0);
  }
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict({0.8}), 5.0, 1e-9);
}

TEST(RegressionTree, ApproximatesSmoothFunction) {
  Rng rng(1);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0, 1);
    x.push_back({t});
    y.push_back(std::sin(6.0 * t));
  }
  TreeConfig cfg;
  cfg.max_depth = 8;
  cfg.min_samples_leaf = 2;
  cfg.min_samples_split = 4;
  RegressionTree tree(cfg);
  tree.fit(x, y);
  std::vector<double> pred, actual;
  Rng test_rng(2);
  for (int i = 0; i < 100; ++i) {
    const double t = test_rng.uniform(0.02, 0.98);
    pred.push_back(tree.predict({t}));
    actual.push_back(std::sin(6.0 * t));
  }
  EXPECT_LT(common::rmse(actual, pred), 0.12);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(3);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 256; ++i) {
    x.push_back({rng.uniform(0, 1)});
    y.push_back(rng.uniform(0, 1));
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  cfg.min_samples_leaf = 1;
  cfg.min_samples_split = 2;
  RegressionTree tree(cfg);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3u);
  EXPECT_LE(tree.num_leaves(), 8u);
}

TEST(RegressionTree, MultiFeatureSplitSelection) {
  // Only feature 1 is predictive; the tree must split on it.
  Rng rng(4);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double noise = rng.uniform(0, 1), signal = rng.uniform(0, 1);
    x.push_back({noise, signal});
    y.push_back(signal > 0.5 ? 10.0 : -10.0);
  }
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict({0.1, 0.9}), 10.0, 0.5);
  EXPECT_NEAR(tree.predict({0.9, 0.1}), -10.0, 0.5);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
  EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
}

TEST(ClassificationTree, LearnsAxisAlignedClasses) {
  std::vector<Vec> x;
  std::vector<std::size_t> y;
  for (int i = 0; i < 100; ++i) {
    const double t = i / 100.0;
    x.push_back({t});
    y.push_back(t < 0.3 ? 0u : t < 0.7 ? 1u : 2u);
  }
  ClassificationTree tree;
  tree.fit(x, y, 3);
  EXPECT_EQ(tree.predict({0.1}), 0u);
  EXPECT_EQ(tree.predict({0.5}), 1u);
  EXPECT_EQ(tree.predict({0.9}), 2u);
}

TEST(ClassificationTree, PureNodeStopsEarly) {
  std::vector<Vec> x{{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<std::size_t> y{1, 1, 1, 1};
  ClassificationTree tree;
  tree.fit(x, y, 2);
  EXPECT_EQ(tree.predict({-5.0}), 1u);
  EXPECT_EQ(tree.predict({10.0}), 1u);
}

TEST(ClassificationTree, TwoDimensionalCheckerQuadrants) {
  Rng rng(5);
  std::vector<Vec> x;
  std::vector<std::size_t> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    x.push_back({a, b});
    y.push_back((a > 0 ? 1u : 0u) + (b > 0 ? 2u : 0u));
  }
  ClassificationTree tree;
  tree.fit(x, y, 4);
  int correct = 0, total = 0;
  Rng test_rng(6);
  for (int i = 0; i < 200; ++i) {
    const double a = test_rng.uniform(-1, 1), b = test_rng.uniform(-1, 1);
    if (std::abs(a) < 0.05 || std::abs(b) < 0.05) continue;
    correct += tree.predict({a, b}) == (a > 0 ? 1u : 0u) + (b > 0 ? 2u : 0u);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.95);
}

TEST(ClassificationTree, LabelOutOfRangeThrows) {
  ClassificationTree tree;
  EXPECT_THROW(tree.fit({{0.0}}, {5}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace oal::ml
