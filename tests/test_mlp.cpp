// Tests for the MLP and multi-head classifier (the IL policy network).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/mlp.h"

namespace oal::ml {
namespace {

using common::Rng;
using common::Vec;

TEST(Softmax, NormalizesAndOrders) {
  const Vec p = softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableForLargeLogits) {
  const Vec p = softmax({1000.0, 999.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[0], p[1]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Mlp, OutputShape) {
  Mlp net(3, 2, {});
  const Vec y = net.forward({0.1, -0.2, 0.3});
  EXPECT_EQ(y.size(), 2u);
}

TEST(Mlp, LearnsXor) {
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.learning_rate = 5e-3;
  cfg.seed = 3;
  Mlp net(2, 1, cfg);
  const std::vector<Vec> xs{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<Vec> ys{{0.0}, {1.0}, {1.0}, {0.0}};
  Rng rng(1);
  net.train(xs, ys, 800, 4, rng);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(net.forward(xs[i])[0], ys[i][0], 0.2) << "case " << i;
  }
}

TEST(Mlp, MaskedTrainingIgnoresMaskedOutputs) {
  MlpConfig cfg;
  cfg.seed = 4;
  Mlp net(1, 2, cfg);
  const Vec before = net.forward({0.5});
  Vec mask{1.0, 0.0};
  for (int i = 0; i < 50; ++i) net.train_step({0.5}, {2.0, -100.0}, &mask);
  const Vec after = net.forward({0.5});
  // Output 0 moved toward target; output 1 only drifts via shared hidden
  // layers (its head weights receive no gradient), so it must not approach
  // the absurd -100 target.
  EXPECT_LT(std::abs(after[0] - 2.0), std::abs(before[0] - 2.0));
  EXPECT_GT(after[1], -5.0);
}

TEST(Mlp, CopyParamsMakesNetworksIdentical) {
  Mlp a(3, 2, {{8}, Activation::kRelu, 1e-3, 0.0, 5});
  Mlp b(3, 2, {{8}, Activation::kRelu, 1e-3, 0.0, 99});
  const Vec x{0.3, -0.1, 0.7};
  EXPECT_NE(a.forward(x)[0], b.forward(x)[0]);
  b.copy_params_from(a);
  EXPECT_DOUBLE_EQ(a.forward(x)[0], b.forward(x)[0]);
  EXPECT_DOUBLE_EQ(a.forward(x)[1], b.forward(x)[1]);
}

TEST(Mlp, NumParamsMatchesArchitecture) {
  Mlp net(4, 3, {{5}, Activation::kTanh, 1e-3, 0.0, 1});
  // (4*5 + 5) + (5*3 + 3) = 25 + 18
  EXPECT_EQ(net.num_params(), 43u);
}

TEST(Mlp, InvalidDimsThrow) {
  EXPECT_THROW(Mlp(0, 1, {}), std::invalid_argument);
  Mlp net(2, 1, {});
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
  EXPECT_THROW(net.train_step({1.0, 2.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Mlp, BatchForwardMatchesScalarForwardBitwise) {
  MlpConfig cfg;
  cfg.hidden = {8, 5};
  cfg.seed = 12;
  Mlp net(3, 2, cfg);
  Rng rng(13);
  common::Mat xs(6, 3);
  for (std::size_t r = 0; r < xs.rows(); ++r)
    for (std::size_t c = 0; c < xs.cols(); ++c) xs(r, c) = rng.uniform(-2, 2);
  const common::Mat ys = net.forward_batch(xs);
  ASSERT_EQ(ys.rows(), 6u);
  ASSERT_EQ(ys.cols(), 2u);
  for (std::size_t r = 0; r < xs.rows(); ++r) {
    const Vec y = net.forward(xs.row(r));
    EXPECT_DOUBLE_EQ(ys(r, 0), y[0]) << "row " << r;
    EXPECT_DOUBLE_EQ(ys(r, 1), y[1]) << "row " << r;
  }
}

TEST(Mlp, TrainStepMatchesScalarAdamReference) {
  // Hand-rolled single-sample Adam step on a linear (no-hidden) network —
  // the pre-batching per-sample update.  The batch path routed through a
  // 1-row minibatch must reproduce it bitwise.
  MlpConfig cfg;
  cfg.hidden = {};
  cfg.learning_rate = 1e-2;
  cfg.l2 = 1e-4;
  cfg.seed = 21;
  Mlp net(3, 2, cfg);

  // Replicate the constructor's Xavier init stream.
  Rng rng(21);
  const double scale = std::sqrt(2.0 / 5.0);
  common::Mat w(2, 3);
  Vec b(2, 0.0);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) w(r, c) = rng.normal(0.0, scale);

  const Vec x{0.4, -0.2, 0.9}, target{0.5, -1.0};

  // Reference: y = Wx + b, dy = y - t, gw = dy x^T, gb = dy, Adam t=1.
  common::Mat mw(2, 3), vw(2, 3);
  Vec mb(2, 0.0), vb(2, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double bc1 = 1.0 - b1, bc2 = 1.0 - b2;
  for (std::size_t r = 0; r < 2; ++r) {
    double y = 0.0;
    for (std::size_t c = 0; c < 3; ++c) y += w(r, c) * x[c];
    y += b[r];
    const double dy = y - target[r];
    for (std::size_t c = 0; c < 3; ++c) {
      const double g = dy * x[c] * 1.0 + cfg.l2 * w(r, c);
      mw(r, c) = b1 * mw(r, c) + (1.0 - b1) * g;
      vw(r, c) = b2 * vw(r, c) + (1.0 - b2) * g * g;
      w(r, c) -= cfg.learning_rate * (mw(r, c) / bc1) / (std::sqrt(vw(r, c) / bc2) + eps);
    }
    const double g = dy * 1.0;
    mb[r] = b1 * mb[r] + (1.0 - b1) * g;
    vb[r] = b2 * vb[r] + (1.0 - b2) * g * g;
    b[r] -= cfg.learning_rate * (mb[r] / bc1) / (std::sqrt(vb[r] / bc2) + eps);
  }

  net.train_step(x, target);
  const Vec probe{-0.7, 1.3, 0.2};
  const Vec got = net.forward(probe);
  for (std::size_t r = 0; r < 2; ++r) {
    double want = 0.0;
    for (std::size_t c = 0; c < 3; ++c) want += w(r, c) * probe[c];
    want += b[r];
    EXPECT_DOUBLE_EQ(got[r], want) << "output " << r;
  }
}

TEST(Mlp, SgdOptimizerConvergesOnXor) {
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.learning_rate = 0.2;
  cfg.seed = 3;
  cfg.optimizer.kind = OptimizerConfig::Kind::kSgd;
  cfg.optimizer.momentum = 0.9;
  Mlp net(2, 1, cfg);
  const std::vector<Vec> xs{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<Vec> ys{{0.0}, {1.0}, {1.0}, {0.0}};
  Rng rng(1);
  net.train(xs, ys, 800, 4, rng);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(net.forward(xs[i])[0], ys[i][0], 0.25) << "case " << i;
}

TEST(Mlp, AdamConvergesOnRegressionSmoke) {
  // train_epoch on a toy regression surface: final-epoch loss must collapse
  // relative to the first epoch.
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.learning_rate = 5e-3;
  cfg.seed = 31;
  Mlp net(2, 1, cfg);
  Rng data_rng(32);
  common::Mat xs(128, 2), ts(128, 1);
  for (std::size_t i = 0; i < xs.rows(); ++i) {
    const double a = data_rng.uniform(-1, 1), b = data_rng.uniform(-1, 1);
    xs(i, 0) = a;
    xs(i, 1) = b;
    ts(i, 0) = std::sin(2.0 * a) * b;
  }
  Rng rng(33);
  const double first = net.train_epoch(xs, ts, 16, rng);
  double last = first;
  for (int e = 0; e < 120; ++e) last = net.train_epoch(xs, ts, 16, rng);
  EXPECT_LT(last, 0.2 * first);
}

TEST(MultiHead, PredictShapes) {
  MultiHeadClassifier net(4, {3, 5}, {});
  const auto probs = net.predict_proba({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_EQ(probs[0].size(), 3u);
  EXPECT_EQ(probs[1].size(), 5u);
  double s = 0.0;
  for (double v : probs[1]) s += v;
  EXPECT_NEAR(s, 1.0, 1e-9);
  const auto cls = net.predict({0.1, 0.2, 0.3, 0.4});
  EXPECT_LT(cls[0], 3u);
  EXPECT_LT(cls[1], 5u);
}

TEST(MultiHead, LearnsSeparableMapping) {
  // Head 0: sign of x0; head 1: quadrant of (x0, x1) among 4 classes.
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.learning_rate = 5e-3;
  cfg.seed = 6;
  MultiHeadClassifier net(2, {2, 4}, cfg);
  Rng rng(7);
  std::vector<Vec> xs;
  std::vector<std::vector<std::size_t>> ys;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    xs.push_back({a, b});
    const std::size_t sign = a > 0 ? 1u : 0u;
    const std::size_t quad = (a > 0 ? 1u : 0u) + (b > 0 ? 2u : 0u);
    ys.push_back({sign, quad});
  }
  net.train(xs, ys, 60, 32, rng);
  int correct = 0, total = 0;
  Rng test_rng(8);
  for (int i = 0; i < 200; ++i) {
    const double a = test_rng.uniform(-1, 1), b = test_rng.uniform(-1, 1);
    if (std::abs(a) < 0.1 || std::abs(b) < 0.1) continue;  // skip boundary
    const auto cls = net.predict({a, b});
    const std::size_t sign = a > 0 ? 1u : 0u;
    const std::size_t quad = (a > 0 ? 1u : 0u) + (b > 0 ? 2u : 0u);
    correct += cls[0] == sign && cls[1] == quad;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.93);
}

TEST(MultiHead, LossDecreasesWithTraining) {
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.seed = 9;
  MultiHeadClassifier net(2, {3}, cfg);
  Rng rng(10);
  std::vector<Vec> xs;
  std::vector<std::vector<std::size_t>> ys;
  for (int i = 0; i < 150; ++i) {
    const double a = rng.uniform(-1, 1);
    xs.push_back({a, a * a});
    ys.push_back({a < -0.3 ? 0u : a < 0.3 ? 1u : 2u});
  }
  const double l1 = net.train(xs, ys, 1, 32, rng);
  const double l2 = net.train(xs, ys, 30, 32, rng);
  EXPECT_LT(l2, l1);
}

TEST(MultiHead, StorageBudgetMatchesPaper) {
  // The paper's policy + buffer must fit in <20 KB; our default-size policy
  // network alone is well under that.
  MultiHeadClassifier net(12, {4, 5, 13, 19}, {{24, 24}, Activation::kTanh, 1e-3, 0.0, 1});
  EXPECT_LT(net.storage_bytes(), 20u * 1024u);
}

TEST(MultiHead, InvalidLabelsThrow) {
  MultiHeadClassifier net(2, {3, 2}, {});
  EXPECT_THROW(net.train_step({0.0, 0.0}, {0}), std::invalid_argument);
  EXPECT_THROW(net.train_step({0.0, 0.0}, {3, 0}), std::invalid_argument);
  EXPECT_THROW(MultiHeadClassifier(2, {}, {}), std::invalid_argument);
  EXPECT_THROW(MultiHeadClassifier(2, {1}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace oal::ml
