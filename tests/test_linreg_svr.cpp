// Tests for ridge regression, quadratic features, linear SVR and RBF features.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "ml/linreg.h"
#include "ml/svr.h"

namespace oal::ml {
namespace {

using common::Rng;
using common::Vec;

TEST(Ridge, RecoversLineWithIntercept) {
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double t = i * 0.1;
    x.push_back({t});
    y.push_back(3.0 * t + 2.0);
  }
  RidgeRegression r(1e-9);
  r.fit(x, y);
  EXPECT_NEAR(r.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(r.intercept(), 2.0, 1e-6);
  EXPECT_NEAR(r.r2(x, y), 1.0, 1e-9);
}

TEST(Ridge, MultivariateRecovery) {
  Rng rng(1);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const Vec xi{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    x.push_back(xi);
    y.push_back(1.0 - 2.0 * xi[0] + 0.5 * xi[1] + 4.0 * xi[2]);
  }
  RidgeRegression r(1e-8);
  r.fit(x, y);
  EXPECT_NEAR(r.coefficients()[0], -2.0, 1e-5);
  EXPECT_NEAR(r.coefficients()[1], 0.5, 1e-5);
  EXPECT_NEAR(r.coefficients()[2], 4.0, 1e-5);
  EXPECT_NEAR(r.intercept(), 1.0, 1e-5);
}

TEST(Ridge, RegularizationShrinksCoefficients) {
  Rng rng(2);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const Vec xi{rng.uniform(-1, 1)};
    x.push_back(xi);
    y.push_back(5.0 * xi[0] + rng.normal(0.0, 0.1));
  }
  RidgeRegression weak(1e-8), strong(1e3);
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_LT(std::abs(strong.coefficients()[0]), std::abs(weak.coefficients()[0]));
}

TEST(Ridge, NoInterceptMode) {
  std::vector<Vec> x{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  std::vector<double> y{2.0, 3.0, 5.0, 7.0};
  RidgeRegression r(1e-10);
  r.fit(x, y, /*fit_intercept=*/false);
  EXPECT_NEAR(r.intercept(), 0.0, 1e-12);
  EXPECT_NEAR(r.predict({1.0, 1.0}), 5.0, 1e-6);
}

TEST(Ridge, PredictBeforeFitThrows) {
  RidgeRegression r;
  EXPECT_THROW(r.predict(common::Vec{1.0}), std::logic_error);
}

TEST(Ridge, BadDataThrows) {
  RidgeRegression r;
  EXPECT_THROW(r.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(r.fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(QuadraticFeatures, ExpandsCorrectly) {
  const Vec f = quadratic_features({2.0, 3.0});
  // [x0, x1, x0^2, x0*x1, x1^2]
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 3.0);
  EXPECT_DOUBLE_EQ(f[2], 4.0);
  EXPECT_DOUBLE_EQ(f[3], 6.0);
  EXPECT_DOUBLE_EQ(f[4], 9.0);
}

TEST(QuadraticFeatures, EnablesQuadraticFit) {
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    const double t = i * 0.2;
    x.push_back(quadratic_features({t}));
    y.push_back(1.0 + 2.0 * t - 3.0 * t * t);
  }
  RidgeRegression r(1e-9);
  r.fit(x, y);
  EXPECT_NEAR(r.predict(quadratic_features({0.5})), 1.0 + 1.0 - 0.75, 1e-6);
}

TEST(LinearSvr, FitsNoisyLine) {
  Rng rng(3);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const Vec xi{rng.uniform(-1, 1)};
    x.push_back(xi);
    y.push_back(2.0 * xi[0] - 1.0 + rng.normal(0.0, 0.02));
  }
  LinearSvr svr;
  svr.fit(x, y);
  EXPECT_NEAR(svr.weights()[0], 2.0, 0.15);
  EXPECT_NEAR(svr.bias(), -1.0, 0.15);
}

TEST(LinearSvr, EpsilonInsensitiveIgnoresSmallNoise) {
  // With a wide tube, noise inside the tube should not destabilize weights.
  Rng rng(4);
  std::vector<Vec> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const Vec xi{rng.uniform(-1, 1)};
    x.push_back(xi);
    y.push_back(xi[0] + rng.uniform(-0.05, 0.05));
  }
  SvrConfig cfg;
  cfg.epsilon = 0.1;
  LinearSvr svr(cfg);
  svr.fit(x, y);
  EXPECT_NEAR(svr.weights()[0], 1.0, 0.15);
}

TEST(LinearSvr, PredictBeforeFitThrows) {
  LinearSvr svr;
  EXPECT_THROW(svr.predict({1.0}), std::logic_error);
}

TEST(RbfSampler, ApproximatesRbfKernel) {
  // E[z(x) . z(y)] ~= exp(-gamma ||x - y||^2).
  const double gamma = 0.5;
  RbfSampler sampler(2, 2048, gamma, 5);
  auto kernel_approx = [&](const Vec& a, const Vec& b) {
    return common::dot(sampler.transform(a), sampler.transform(b));
  };
  const Vec a{0.3, -0.2}, b{-0.5, 0.4};
  const double d2 = (a[0] - b[0]) * (a[0] - b[0]) + (a[1] - b[1]) * (a[1] - b[1]);
  EXPECT_NEAR(kernel_approx(a, b), std::exp(-gamma * d2), 0.05);
  EXPECT_NEAR(kernel_approx(a, a), 1.0, 0.05);
}

TEST(RbfSampler, EnablesNonlinearRegression) {
  // sin(3x) is not linearly representable; RBF features + linear SVR is.
  Rng rng(6);
  std::vector<Vec> x_raw;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double t = rng.uniform(-1.5, 1.5);
    x_raw.push_back({t});
    y.push_back(std::sin(3.0 * t));
  }
  RbfSampler sampler(1, 200, 2.0, 7);
  const auto x = sampler.transform(x_raw);
  SvrConfig cfg;
  cfg.epochs = 120;
  cfg.c = 100.0;
  LinearSvr svr(cfg);
  svr.fit(x, y);
  std::vector<double> pred, actual;
  Rng test_rng(8);
  for (int i = 0; i < 100; ++i) {
    const double t = test_rng.uniform(-1.4, 1.4);
    pred.push_back(svr.predict(sampler.transform(Vec{t})));
    actual.push_back(std::sin(3.0 * t));
  }
  EXPECT_LT(common::rmse(actual, pred), 0.15);
}

TEST(RbfSampler, InvalidGammaThrows) {
  EXPECT_THROW(RbfSampler(2, 8, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace oal::ml
