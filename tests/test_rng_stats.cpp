// Unit tests for deterministic RNG and statistics helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/decision_timer.h"
#include "fleet/aggregator.h"

namespace oal::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproxHalf) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 30000; ++i) s.add(r.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(29);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) ones += r.categorical(w) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng r(31);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng a(37);
  Rng b = a.fork();
  // Streams should not be identical.
  int same = 0;
  for (int i = 0; i < 32; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Stats, MeanVarianceStd) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_NEAR(stddev(xs), 1.1180339887, 1e-9);
}

TEST(Stats, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 25), 2.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Single element: every percentile is that element (no interpolation
  // partner, and p=100 must not index past the end).
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
  // p = 0 / 100 on unsorted input hit the exact extremes.
  EXPECT_DOUBLE_EQ(percentile({9, -3, 4}, 0), -3.0);
  EXPECT_DOUBLE_EQ(percentile({9, -3, 4}, 100), 9.0);
  // Out-of-range p is rejected, not clamped.
  EXPECT_THROW(percentile({1, 2}, -0.001), std::invalid_argument);
  EXPECT_THROW(percentile({1, 2}, 100.001), std::invalid_argument);
}

TEST(Stats, PercentileRuleIsPinnedAcrossAllSurfaces) {
  // One percentile rule repo-wide: common::stats::percentile, the
  // DecisionTimer latency reservoir and the fleet StreamingMetric must agree
  // bit-for-bit on the same samples.  The shared primitive is
  // percentile_sorted (linear interpolation at idx = p/100 * (n-1)); this
  // test pins every surface to it so none can drift back to nearest-rank.
  const std::vector<double> samples{12.0, 3.0, 3.0, 47.0, 8.0, 3.0, 21.0, 8.0, 30.0};
  for (const double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    const double expect = percentile(samples, p);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(percentile_sorted(sorted.data(), sorted.size(), p), expect);

    oal::fleet::StreamingMetric metric(64);
    for (const double x : samples) metric.add(x);
    EXPECT_EQ(metric.percentile(p), expect);
  }

  // DecisionTimer reports exactly p50/p99 — same rule, fed via record().
  oal::core::DecisionTimer timer;
  for (const double x : samples) timer.record(x);
  const oal::core::DecisionLatencyStats s = timer.stats();
  EXPECT_EQ(s.p50_ns, percentile(samples, 50.0));
  EXPECT_EQ(s.p99_ns, percentile(samples, 99.0));
  EXPECT_EQ(s.max_ns, 47.0);

  // Interpolation (not nearest-rank): even n has no middle element, the
  // median is the average of the two central order statistics; ties are
  // plateaus the interpolation walks through.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 10.0}, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5.0, 5.0, 5.0, 9.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);

  // Single sample: every percentile is that sample, on every surface.
  oal::fleet::StreamingMetric one(8);
  one.add(4.25);
  EXPECT_EQ(one.percentile(0.0), 4.25);
  EXPECT_EQ(one.percentile(99.0), 4.25);
  // Empty: throws (stats/metric) or zeroed summary (DecisionTimer, whose
  // stats() must be safe to call on an unused timer at run end).
  oal::fleet::StreamingMetric empty(8);
  EXPECT_THROW(empty.percentile(50.0), std::invalid_argument);
  const oal::core::DecisionLatencyStats none = oal::core::DecisionTimer{}.stats();
  EXPECT_EQ(none.decisions, 0u);
  EXPECT_EQ(none.p50_ns, 0.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(min_of({}), std::invalid_argument);
}

TEST(Stats, MapeSkipsZeroActuals) {
  const double m = mape({0.0, 2.0}, {5.0, 2.2});
  EXPECT_NEAR(m, 10.0, 1e-9);
}

TEST(Stats, RmseZeroForPerfect) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(Stats, CorrelationSigns) {
  EXPECT_NEAR(correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.5);
  for (int i = 0; i < 30; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.update(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace oal::common
