// Tests for the persistent artifact store, the store-backed OracleCache,
// the sharded (pooled) Oracle search, and the weight-serialization round
// trips the store's blobs carry.  The contract under test throughout:
// warm reuse is bitwise identical to cold computation, and a damaged store
// is silently recomputed, never a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/artifact_store.h"
#include "core/il_policy.h"
#include "core/oracle.h"
#include "core/rl_controller.h"
#include "core/runner.h"
#include "ml/dqn.h"
#include "ml/qlearn.h"
#include "soc/platform.h"
#include "workloads/cpu_benchmarks.h"

namespace oal::core {
namespace {

namespace fs = std::filesystem;

/// Fresh empty store directory under the gtest temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("oal-store-" + name);
  fs::remove_all(dir);
  return dir;
}

/// The single store file in `dir` (fails the test if there isn't exactly one).
fs::path only_file(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) files.push_back(e.path());
  EXPECT_EQ(files.size(), 1u);
  return files.empty() ? fs::path() : files.front();
}

void corrupt_byte(const fs::path& file, std::uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

std::vector<soc::SnippetDescriptor> test_trace(const char* app, std::size_t n,
                                               std::uint64_t seed) {
  common::Rng rng(seed);
  return workloads::CpuBenchmarks::trace(workloads::CpuBenchmarks::by_name(app), n, rng);
}

TEST(ArtifactStoreBlob, RoundTripAndMiss) {
  auto store = ArtifactStore(fresh_dir("blob").string());
  const std::vector<double> values{1.0, -2.5, 0.0, 1e300, -0.0};
  store.put_blob("weights", 42, values);
  const auto back = store.get_blob("weights", 42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, values);
  EXPECT_FALSE(store.get_blob("weights", 43).has_value());   // other key
  EXPECT_FALSE(store.get_blob("other", 42).has_value());     // other name
  // Overwrite is atomic and last-writer-wins.
  store.put_blob("weights", 42, {7.0});
  EXPECT_EQ(store.get_blob("weights", 42), std::vector<double>{7.0});
}

TEST(ArtifactStoreBlob, RejectsVersionMismatch) {
  const fs::path dir = fresh_dir("version");
  ArtifactStore store(dir.string());
  store.put_blob("w", 1, {1.0, 2.0});
  corrupt_byte(only_file(dir), 8);  // header: magic u64, then version u32
  EXPECT_FALSE(store.get_blob("w", 1).has_value());
  const auto files = store.inspect();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_FALSE(files[0].valid);
  EXPECT_NE(files[0].detail.find("version"), std::string::npos);
  EXPECT_EQ(store.gc(), 1u);
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST(ArtifactStoreBlob, RejectsTruncation) {
  const fs::path dir = fresh_dir("trunc");
  ArtifactStore store(dir.string());
  store.put_blob("w", 1, {1.0, 2.0, 3.0});
  const fs::path file = only_file(dir);
  fs::resize_file(file, fs::file_size(file) - 5);
  EXPECT_FALSE(store.get_blob("w", 1).has_value());
  const auto files = store.inspect();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_FALSE(files[0].valid);
}

TEST(ArtifactStoreBlob, RejectsChecksumCorruption) {
  const fs::path dir = fresh_dir("checksum");
  ArtifactStore store(dir.string());
  store.put_blob("w", 1, {1.0, 2.0, 3.0});
  corrupt_byte(only_file(dir), 32 + 9);  // a payload byte past the header
  EXPECT_FALSE(store.get_blob("w", 1).has_value());
  const auto files = store.inspect();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_FALSE(files[0].valid);
  EXPECT_NE(files[0].detail.find("checksum"), std::string::npos);
}

TEST(OracleStore, CrossProcessWarmReuse) {
  const fs::path dir = fresh_dir("warm");
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("FFT", 4, 11);

  std::vector<soc::SocConfig> cold_configs;
  std::vector<double> cold_costs;
  {
    OracleCache cache(std::make_shared<ArtifactStore>(dir.string()));
    for (const auto& s : trace) {
      cold_configs.push_back(cache.config(plat, s, Objective::kEnergy));
      cold_costs.push_back(cache.cost(plat, s, Objective::kEnergy));
    }
    EXPECT_EQ(cache.searches(), trace.size());
    EXPECT_EQ(cache.flush(), trace.size());
    EXPECT_EQ(cache.flush(), 0u);  // idempotent: nothing new the second time
  }

  // A second "process": same store directory, fresh cache.  Every lookup is
  // a hit against the preloaded entries — zero searches, identical values.
  OracleCache warm(std::make_shared<ArtifactStore>(dir.string()));
  EXPECT_EQ(warm.store_loaded(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(warm.config(plat, trace[i], Objective::kEnergy), cold_configs[i]);
    EXPECT_EQ(warm.cost(plat, trace[i], Objective::kEnergy), cold_costs[i]);
  }
  EXPECT_EQ(warm.searches(), 0u);
  EXPECT_EQ(warm.hits(), 2 * trace.size());
}

TEST(OracleStore, CorruptBucketRecomputesWithoutCrash) {
  const fs::path dir = fresh_dir("corrupt-bucket");
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("Qsort", 2, 5);
  {
    OracleCache cache(std::make_shared<ArtifactStore>(dir.string()));
    for (const auto& s : trace) (void)cache.config(plat, s, Objective::kEnergy);
    // Destructor flushes best-effort.
  }
  corrupt_byte(only_file(dir), 0);  // destroy the magic

  OracleCache cache(std::make_shared<ArtifactStore>(dir.string()));
  EXPECT_EQ(cache.store_loaded(), 0u);  // invalid bucket treated as absent
  for (const auto& s : trace)
    EXPECT_EQ(cache.config(plat, s, Objective::kEnergy),
              oracle_config(plat, s, Objective::kEnergy));
  EXPECT_EQ(cache.searches(), trace.size());
  // flush() rewrites the bucket wholesale; the store heals.
  EXPECT_EQ(cache.flush(), trace.size());
  OracleCache healed(std::make_shared<ArtifactStore>(dir.string()));
  EXPECT_EQ(healed.store_loaded(), trace.size());
}

TEST(OracleSearch, PooledMatchesSerialBitwise) {
  soc::BigLittlePlatform plat;
  common::ThreadPool pool(4);
  for (const auto& s : test_trace("Kmeans", 3, 21)) {
    const auto serial = oracle_search(plat, s, Objective::kEnergy);
    const auto pooled = oracle_search(plat, s, Objective::kEnergy, &pool);
    EXPECT_EQ(pooled.first, serial.first);  // argmin config, tie-break included
    EXPECT_EQ(pooled.second, serial.second);  // bitwise-equal cost
  }
}

TEST(OracleCache, CoalescesConcurrentColdMisses) {
  soc::BigLittlePlatform plat;
  const auto trace = test_trace("SHA", 1, 31);
  OracleCache cache;
  constexpr std::size_t kThreads = 8;
  std::vector<soc::SocConfig> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { got[t] = cache.config(plat, trace[0], Objective::kEnergy); });
  for (auto& th : threads) th.join();
  // One owner searched; everyone else waited for its result.
  EXPECT_EQ(cache.searches(), 1u);
  EXPECT_EQ(cache.lookups(), kThreads);
  EXPECT_EQ(cache.size(), 1u);
  for (const auto& c : got) EXPECT_EQ(c, got[0]);
}

TEST(ThreadPool, RunHelpingNestedFromWorker) {
  // oracle_search inside a pool worker reaches run_helping from a worker
  // thread; run_indexed would deadlock there.  Exercise exactly that shape.
  common::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.run_helping(4, [&](std::size_t) {
    pool.run_helping(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(Collect, PooledMatchesSerialBitwise) {
  const std::vector<workloads::AppSpec> apps{workloads::CpuBenchmarks::by_name("FFT"),
                                             workloads::CpuBenchmarks::by_name("Kmeans")};
  common::ThreadPool pool(4);
  soc::BigLittlePlatform plat_a, plat_b;
  common::Rng rng_a(7), rng_b(7);
  OracleCache cache_a, cache_b;
  const auto serial =
      collect_offline_data(plat_a, apps, Objective::kEnergy, 4, 3, rng_a, &cache_a);
  const auto pooled = collect_offline_data(plat_b, apps, Objective::kEnergy, 4, 3, rng_b,
                                           &cache_b, /*thermal_aware=*/false, &pool);
  ASSERT_EQ(pooled.policy.states.size(), serial.policy.states.size());
  EXPECT_EQ(pooled.policy.states, serial.policy.states);  // Vec == is bitwise here
  EXPECT_EQ(pooled.policy.labels, serial.policy.labels);
  ASSERT_EQ(pooled.model_samples.size(), serial.model_samples.size());
  for (std::size_t i = 0; i < serial.model_samples.size(); ++i) {
    EXPECT_EQ(pooled.model_samples[i].config, serial.model_samples[i].config);
    EXPECT_EQ(pooled.model_samples[i].time_s, serial.model_samples[i].time_s);
    EXPECT_EQ(pooled.model_samples[i].instructions, serial.model_samples[i].instructions);
    EXPECT_EQ(pooled.model_samples[i].power_w, serial.model_samples[i].power_w);
    EXPECT_EQ(pooled.model_samples[i].workload.cpi_obs, serial.model_samples[i].workload.cpi_obs);
  }
  // The rng streams must end at the same position (phase-1 draws are serial).
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(IlPolicy, ArtifactRoundTripsDecisionsAndBookkeeping) {
  soc::BigLittlePlatform plat;
  common::Rng rng(7);
  const auto mibench = workloads::CpuBenchmarks::of_suite(workloads::Suite::kMiBench);
  OracleCache cache;
  const auto off = collect_offline_data(plat, mibench, Objective::kEnergy, 4, 2, rng, &cache);
  IlPolicy trained(plat.space());
  trained.train_offline(off.policy, rng);

  IlPolicy restored(plat.space());
  ASSERT_TRUE(restored.import_artifact(trained.export_artifact()));
  for (const auto& s : off.policy.states) EXPECT_EQ(restored.decide(s), trained.decide(s));
  EXPECT_EQ(restored.train_time_s(), trained.train_time_s());
  EXPECT_EQ(restored.last_train_loss(), trained.last_train_loss());
  EXPECT_EQ(restored.export_artifact(), trained.export_artifact());

  // Garbage in -> false out, restored policy untouched.
  IlPolicy untouched(plat.space());
  auto bad = trained.export_artifact();
  bad.pop_back();
  EXPECT_FALSE(untouched.import_artifact(bad));
  bad = trained.export_artifact();
  bad.push_back(0.0);
  EXPECT_FALSE(untouched.import_artifact(bad));  // trailing garbage rejected
}

TEST(TabularQ, StateRoundTripContinuesIdentically) {
  ml::TabularQ original(6);
  common::Rng env(13);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t s = env.next_u64() % 16;
    const std::size_t a = original.select_action(s);
    original.update(s, a, env.uniform(-1.0, 1.0), env.next_u64() % 16);
  }
  std::vector<double> state;
  original.export_state(state);
  ml::TabularQ restored(6);
  std::size_t pos = 0;
  ASSERT_TRUE(restored.import_state(state, pos));
  EXPECT_EQ(pos, state.size());
  // Same exploration rng, same table: identical trajectories from here on.
  common::Rng env_a(29), env_b(29);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t s = env_a.next_u64() % 16;
    EXPECT_EQ(restored.select_action(s), original.select_action(env_b.next_u64() % 16));
  }
}

TEST(Dqn, ParamsRoundTripReproducesExport) {
  ml::DqnConfig cfg;
  cfg.hidden = {8};
  ml::Dqn original(3, 4, cfg);
  common::Rng env(17);
  for (int i = 0; i < 128; ++i) {
    const common::Vec s{env.uniform(0, 1), env.uniform(0, 1), env.uniform(0, 1)};
    const std::size_t a = original.select_action(s);
    const common::Vec s2{env.uniform(0, 1), env.uniform(0, 1), env.uniform(0, 1)};
    original.observe(s, a, env.uniform(-1.0, 1.0), s2);
  }
  std::vector<double> params;
  original.export_params(params);
  ml::Dqn restored(3, 4, cfg);
  std::size_t pos = 0;
  ASSERT_TRUE(restored.import_params(params, pos));
  EXPECT_EQ(pos, params.size());
  std::vector<double> again;
  restored.export_params(again);
  EXPECT_EQ(again, params);
  // Shape mismatch is rejected, not misread.
  ml::Dqn wrong_shape(4, 4, cfg);
  pos = 0;
  EXPECT_FALSE(wrong_shape.import_params(params, pos));
}

TEST(QLearningController, StateRoundTripViaBlob) {
  // The fig4 warm path: pretrained controller -> store blob -> fresh
  // controller in another process.  Round trip through an actual store file.
  soc::BigLittlePlatform plat;
  QLearningController rl(plat.space());
  DrmRunner runner(plat, [] {
    RunnerOptions fast;
    fast.compute_oracle = false;
    return fast;
  }());
  (void)runner.run(test_trace("Dijkstra", 12, 23), rl, {4, 4, 8, 10});

  const fs::path dir = fresh_dir("qblob");
  ArtifactStore store(dir.string());
  store.put_blob("q", 9, rl.export_state());

  QLearningController restored(plat.space());
  const auto blob = store.get_blob("q", 9);
  ASSERT_TRUE(blob.has_value());
  ASSERT_TRUE(restored.import_state(*blob));
  EXPECT_EQ(restored.export_state(), rl.export_state());
  EXPECT_EQ(restored.table_states(), rl.table_states());
}

}  // namespace
}  // namespace oal::core
